"""Replication fault matrix: ship damage, leader kill, promotion, fencing.

Each round builds a three-node cluster in one process — a leader and two
followers over real HTTP — then walks it through the failure story the
replicated tier promises to survive, under a seeded deterministic fault
plan over the shipping path (``repl.ship.{drop,dup,reorder}``,
``repl.apply.crash``):

1. **Damaged shipping converges.**  Writes land on the leader while the
   plan drops, duplicates and reorders shipped batches and crashes
   appliers mid-apply; both followers must still converge to the
   leader's exact engine state digest.
2. **Kill the leader mid-stream.**  Two acked writes are deliberately
   left unshipped, the leader fail-stops (disk survives), and follower 1
   is promoted with ``catchup_store`` pointed at the dead leader's
   store: the unshipped tail must be recovered — zero acked-write loss.
3. **Fence the deposed epoch.**  A batch stamped with the dead leader's
   epoch must be refused by a replica that has seen the new epoch.
4. **The history serializes.**  Every client-visible read and write is
   recorded into a :class:`repro.replication.HistoryRecorder`, and the
   black-box checker must find an admissible serialization: no forks,
   no lost or phantom acked writes, monotonic and pinned reads honored,
   bit-identical converged finals.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_replication.py           # 12 rounds
    PYTHONPATH=src python benchmarks/bench_replication.py --smoke   # 4, CI gate

``--smoke`` exits 1 on any violation.  Results land in
``benchmarks/results/replication_smoke.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

from benchmarks.bench_chaos import http, make_lewis  # noqa: E402

RESULTS_DIR = Path(__file__).resolve().parent / "results"

BASE_ROWS = 120
WRITES_UNDER_FAULTS = 10
UNSHIPPED_WRITES = 2  # acked by the doomed leader, recovered at promotion


def start_server(server):
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def stop_server(server):
    server.shutdown()
    server.server_close()
    if server.replication is not None:
        server.replication.stop()
    server.monitors.close()


def wait_until(predicate, timeout=30.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def build_plan(seed: int):
    """Seeded damage over the shipping path; deterministic per seed."""
    import repro.faults as faults

    rng = random.Random(seed)
    points = {}
    for point in rng.sample(
        ["repl.ship.drop", "repl.ship.dup", "repl.ship.reorder"],
        k=rng.choice([1, 2, 3]),
    ):
        points[point] = {"probability": round(rng.uniform(0.2, 0.5), 3)}
    if rng.random() < 0.7:
        points["repl.apply.crash"] = {
            "probability": round(rng.uniform(0.1, 0.25), 3)
        }
    return faults.FaultPlan(points, seed=seed), points


def final_state(base: str) -> dict | None:
    """One replica's converged fingerprint for the checker's finals."""
    status, body = http(base, "/v1/t/health?digest=1")
    if status != 200:
        return None
    return {
        "state_token": body["state_token"],
        "table_version": body["table_version"],
        "last_seq": body["last_seq"],
        "digest": body["state_digest"],
        "n_rows": body["n_rows"],
    }


def run_round(seed: int) -> dict:
    import repro.faults as faults
    from repro.replication import FencedError, HistoryRecorder, check_history
    from repro.service.server import create_server
    from repro.store import ArtifactStore, Registry, create_tenant

    failures: list[str] = []
    recorder = HistoryRecorder()
    acked_rows = 0

    def write(base: str, replica: str, row: dict) -> tuple[int, dict]:
        nonlocal acked_rows
        status, body = http(base, "/v1/t/update", {"insert": [row]})
        ok = status == 200
        recorder.record_write(
            "writer",
            replica,
            ok,
            seq=body.get("result", {}).get("wal_seq") if ok else None,
            version=body.get("table_version") if ok else None,
            token=body.get("state_token") if ok else None,
            request_id=body.get("request_id"),
        )
        if ok:
            acked_rows += 1
        elif status not in (429, 503, 504):
            failures.append(f"write on {replica} answered {status}")
        return status, body

    def read(base: str, replica: str, client: str, min_state=None):
        headers = {"X-Repro-Min-State": min_state} if min_state else None
        status, body = http(
            base, "/v1/t/explain/global", {}, headers=headers
        )
        recorder.record_read(
            client,
            replica,
            status == 200,
            version=body.get("table_version") if status == 200 else None,
            token=body.get("state_token") if status == 200 else None,
            min_state=min_state,
        )
        if status not in (200, 503):
            failures.append(f"read on {replica} answered {status}")
        return status

    with tempfile.TemporaryDirectory(prefix="repl-bench-") as tmp:
        tmp = Path(tmp)
        leader_store = ArtifactStore(tmp / "leader")
        create_tenant(leader_store, "t", make_lewis(rows=BASE_ROWS)).close()
        leader = create_server(
            registry=Registry(leader_store, background=True), port=0
        )
        leader_base = start_server(leader)
        followers = []
        for name in ("f1", "f2"):
            server = create_server(
                registry=Registry(tmp / name, background=True),
                port=0,
                follow=leader_base,
            )
            followers.append((name, server, start_server(server)))

        status, body = http(leader_base, "/v1/t/health")
        initial = {"version": body["table_version"], "token": body["state_token"]}

        plan, spec = build_plan(seed)
        rng = random.Random(seed ^ 0xF0110)
        try:
            # -- phase 1: writes under shipping damage ----------------------
            last_token = None
            with faults.plan(plan):
                for i in range(WRITES_UNDER_FAULTS):
                    status, body = write(
                        leader_base, "leader", {"a": i % 3, "b": (i + 1) % 3, "c": 0}
                    )
                    if status == 200:
                        last_token = body["state_token"]
                    name, _server, base = followers[rng.randrange(2)]
                    read(base, name, f"reader-{name}")
                    if last_token and rng.random() < 0.5:
                        # read-your-writes: pin a follower to the freshest ack
                        read(base, name, "writer", min_state=last_token)
                    # space writes out so each ships in its own batch and
                    # the ship faults get distinct batches to damage
                    time.sleep(0.03)
                counts = plan.counts()

            def caught_up(base):
                status, body = http(base, "/v1/t/health")
                return status == 200 and body.get("last_seq") == acked_rows

            for name, _server, base in followers:
                if not wait_until(lambda b=base: caught_up(b)):
                    failures.append(f"{name} never converged under faults")

            # -- phase 2: kill the leader with an unshipped tail ------------
            f1_name, f1_server, f1_base = followers[0]
            f2_name, f2_server, f2_base = followers[1]
            f1_server.replication.stop()
            f2_server.replication.stop()
            for i in range(UNSHIPPED_WRITES):
                write(leader_base, "leader", {"a": i % 3, "b": 2, "c": 1})
            stop_server(leader)
            leader.registry.close(checkpoint=False)  # fail-stop: disk survives

            status, body = http(
                f1_base,
                "/v1/replication/promote",
                {"catchup_store": str(tmp / "leader"), "reason": f"bench seed {seed}"},
            )
            if status != 200:
                failures.append(f"promotion failed: {status} {body}")
            else:
                if body["epoch"] != 1:
                    failures.append(f"promotion epoch {body['epoch']} != 1")
                if body["caught_up"].get("t") != UNSHIPPED_WRITES:
                    failures.append(
                        "catch-up recovered "
                        f"{body['caught_up']} of {UNSHIPPED_WRITES} unshipped writes"
                    )

            # -- phase 3: fence the deposed epoch ---------------------------
            stale = {"tenant": "t", "epoch": 0, "records": [], "last_seq": 0}
            try:
                f1_server.replication.ingest_batch("t", stale)
                failures.append("promoted leader accepted a deposed-epoch batch")
            except FencedError:
                pass

            # -- phase 4: re-form the cluster around the new leader ---------
            status, body = http(
                f2_base, "/v1/replication/retarget", {"leader_url": f1_base}
            )
            if status != 200:
                failures.append(f"retarget failed: {status} {body}")
            f2_server.replication.ensure_tailer("t")
            write(f1_base, f1_name, {"a": 1, "b": 1, "c": 2})
            read(f1_base, f1_name, "writer")
            if not wait_until(lambda: caught_up(f2_base)):
                failures.append("f2 never converged on the promoted leader")
            read(f2_base, f2_name, f"reader-{f2_name}")

            # -- verdict: admissible serialization + converged finals -------
            finals = {}
            for name, base in ((f1_name, f1_base), (f2_name, f2_base)):
                state = final_state(base)
                if state is None:
                    failures.append(f"{name} unhealthy at verdict time")
                else:
                    finals[name] = state
                    if state["n_rows"] != BASE_ROWS + acked_rows:
                        failures.append(
                            f"{name} holds {state['n_rows']} rows, expected "
                            f"{BASE_ROWS + acked_rows}"
                        )
            verdict = check_history(
                recorder.events(), finals=finals, initial=initial
            )
            failures.extend(verdict["violations"])
        finally:
            for _name, server, _base in followers:
                try:
                    stop_server(server)
                except Exception:  # noqa: BLE001 - teardown is best-effort
                    pass
                server.registry.close(checkpoint=False)

    return {
        "seed": seed,
        "plan": spec,
        "fault_counts": counts,
        "acked_writes": acked_rows,
        "checker": verdict["stats"],
        "serialization_length": len(verdict["serialization"]),
        "failures": failures,
        "ok": not failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="4-round matrix; exit 1 on any violation (CI gate)",
    )
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="number of seeded rounds (default: 4 smoke, 12 full)",
    )
    parser.add_argument("--seed", type=int, default=0, help="first round seed")
    args = parser.parse_args(argv)
    rounds_wanted = args.rounds or (4 if args.smoke else 12)

    started = time.perf_counter()
    rounds = []
    for k in range(rounds_wanted):
        verdict = run_round(args.seed + k)
        rounds.append(verdict)
        mark = "ok" if verdict["ok"] else "FAIL " + "; ".join(verdict["failures"])
        print(f"[{k + 1:3d}/{rounds_wanted}] seed={verdict['seed']:<4d} {mark}")

    total_fired: dict[str, int] = {}
    for verdict in rounds:
        for point, c in verdict["fault_counts"].items():
            total_fired[point] = total_fired.get(point, 0) + c["fired"]
    failed = [r for r in rounds if not r["ok"]]
    report = {
        "rounds": rounds_wanted,
        "elapsed_s": round(time.perf_counter() - started, 2),
        "faults_fired_total": total_fired,
        "failed_rounds": len(failed),
        "failures": [
            {"seed": r["seed"], "failures": r["failures"]} for r in failed
        ],
        "results": rounds,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "replication_smoke.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\n{rounds_wanted} rounds, {sum(total_fired.values())} ship/apply "
        f"faults fired, {len(failed)} violations -> {out}"
    )
    if failed:
        for r in failed:
            print(f"  seed {r['seed']}: {'; '.join(r['failures'])}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
