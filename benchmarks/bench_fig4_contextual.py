"""Figure 4: contextual explanations over sub-populations.

Paper shapes asserted:

* 4a (German): raising checking-account ``status`` is more likely to
  flip a rejection for *older* than for younger applicants.
* 4b (Adult): a better ``marital`` value moves older individuals more.
* 4c/4d (COMPAS software): worsening priors / juvenile crime is more
  detrimental for Black defendants (higher necessity), while improving
  them benefits White defendants at least as much (sufficiency).
"""

import pytest

from repro import Lewis
from repro.data.compas import compas_software_positive

from benchmarks.conftest import write_report


def _context_rows(lewis, attribute, contexts):
    rows = []
    for label, context in contexts.items():
        exp = lewis.explain_context(context, attributes=[attribute])
        s = exp.score_of(attribute)
        rows.append((label, s.necessity, s.sufficiency, s.necessity_sufficiency))
    return rows


def _render(title, rows):
    lines = [title, f"{'context':10s} {'NEC':>6s} {'SUF':>6s} {'NESUF':>6s}"]
    for label, nec, suf, nesuf in rows:
        lines.append(f"{label:10s} {nec:6.2f} {suf:6.2f} {nesuf:6.2f}")
    return lines


def test_fig4a_status_by_age_german(benchmark, explainers):
    lewis = explainers["german"]
    contexts = {"young": {"age": "<25 yr"}, "old": {"age": ">50 yr"}}
    rows = benchmark.pedantic(
        lambda: _context_rows(lewis, "status", contexts), rounds=1, iterations=1
    )
    write_report("fig4a_german_status", _render("Figure 4a - status x age (German)", rows))
    by_label = {r[0]: r for r in rows}
    assert by_label["old"][2] >= by_label["young"][2] - 0.05  # SUF old >= young


def test_fig4b_marital_by_age_adult(benchmark, explainers):
    lewis = explainers["adult"]
    contexts = {"young": {"age": "<=30 yr"}, "old": {"age": "46-60 yr"}}
    rows = benchmark.pedantic(
        lambda: _context_rows(lewis, "marital", contexts), rounds=1, iterations=1
    )
    write_report("fig4b_adult_marital", _render("Figure 4b - marital x age (Adult)", rows))
    by_label = {r[0]: r for r in rows}
    assert by_label["old"][2] >= by_label["young"][2] - 0.05


@pytest.fixture(scope="module")
def compas_software_lewis(bundles):
    bundle = bundles["compas"]
    features = bundle.table.select(bundle.feature_names)
    return Lewis(
        compas_software_positive,
        data=features,
        feature_names=bundle.feature_names,
        graph=bundle.graph,
    )


def test_fig4c_priors_by_race(benchmark, compas_software_lewis):
    contexts = {"white": {"race": "White"}, "black": {"race": "Black"}}
    rows = benchmark.pedantic(
        lambda: _context_rows(compas_software_lewis, "priors_count", contexts),
        rounds=1,
        iterations=1,
    )
    write_report("fig4c_compas_priors", _render("Figure 4c - priors x race", rows))
    by_label = {r[0]: r for r in rows}
    # More priors hurt Black defendants more (necessity of the good value).
    assert by_label["black"][1] >= by_label["white"][1]
    # Reducing priors benefits White defendants at least as much.
    assert by_label["white"][2] >= by_label["black"][2] - 0.25


def test_fig4d_juvenile_by_race(benchmark, compas_software_lewis):
    contexts = {"white": {"race": "White"}, "black": {"race": "Black"}}
    rows = benchmark.pedantic(
        lambda: _context_rows(compas_software_lewis, "juv_fel_count", contexts),
        rounds=1,
        iterations=1,
    )
    write_report("fig4d_compas_juvenile", _render("Figure 4d - juvenile x race", rows))
    by_label = {r[0]: r for r in rows}
    assert by_label["black"][1] >= by_label["white"][1]
