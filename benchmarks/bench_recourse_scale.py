"""Recourse-at-scale benchmark: parametric engine, workers, anytime mode.

Times one cohort recourse audit four ways and persists the numbers under
``benchmarks/results/recourse_scale.json``:

* **milp serial** — ``RecourseSolver(engine="milp")``, the scipy/HiGHS
  route every signature program used to take (the PR-4 baseline path),
* **parametric serial** — cached parametric-dual bounds, greedy
  certificates and warm-started exact search, one process,
* **parametric parallel** — the same work partitioned over
  ``workers=2`` process-pool chunks,
* **anytime** — greedy LP rounding with a certified optimality gap.

Three correctness gates run inside the benchmark, so a speedup can
never be bought with a wrong answer:

1. parametric objectives match the MILP oracle to 1e-9 (and feasibility
   verdicts match exactly),
2. serial and parallel answers are *bit-identical* (action sets, costs,
   sufficiencies, thresholds),
3. every anytime answer's cost exceeds the exact optimum by at most its
   reported ``optimality_gap``.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_recourse_scale.py           # full
    PYTHONPATH=src python benchmarks/bench_recourse_scale.py --smoke   # CI guard

``--smoke`` shrinks the cohort and *asserts* the gates plus a perf
tripwire (requesting workers must never make the audit materially
slower than serial); the full run records the numbers.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

PARITY_TOL = 1e-9
GAP_TOL = 1e-9

#: smoke tripwire — a worker-enabled audit may never be more than this
#: factor slower than the serial one.  Small smoke cohorts stay below
#: ``parallel_threshold`` and run inline, so the two are the same code
#: path and the slack only absorbs timer noise.
SMOKE_PARALLEL_SLACK = 1.25


def _cohort_rows(lewis, cohort: int):
    negative = [int(i) for i in lewis.negative_indices()]
    indices = (negative * (cohort // max(len(negative), 1) + 1))[:cohort]
    return [lewis.data.row_codes(i) for i in indices]


def _timed_batch(solver, rows, alpha, **kwargs):
    start = time.perf_counter()
    out = solver.solve_batch(rows, alpha=alpha, on_infeasible="none", **kwargs)
    return time.perf_counter() - start, out


def _check_oracle_parity(oracle, fast) -> int:
    checked = 0
    for a, b in zip(oracle, fast):
        if (a is None) != (b is None):
            raise SystemExit("oracle parity violation: feasibility differs")
        if a is None:
            continue
        if abs(a.total_cost - b.total_cost) > PARITY_TOL:
            raise SystemExit(
                f"oracle parity violation: milp cost {a.total_cost} vs "
                f"parametric {b.total_cost}"
            )
        checked += 1
    return checked


def _check_bit_identity(serial, parallel) -> None:
    for a, b in zip(serial, parallel):
        if (a is None) != (b is None):
            raise SystemExit("parallel identity violation: feasibility differs")
        if a is None:
            continue
        if (
            a.as_dict() != b.as_dict()
            or a.total_cost != b.total_cost
            or a.estimated_sufficiency != b.estimated_sufficiency
            or a.threshold != b.threshold
        ):
            raise SystemExit(
                f"parallel identity violation: {a.as_dict()} != {b.as_dict()}"
            )


def _check_anytime_gaps(exact, anytime) -> tuple[int, float]:
    certified = 0
    worst_gap = 0.0
    for e, a in zip(exact, anytime):
        if a is None or e is None:
            continue
        if a.optimality_gap < 0.0:
            raise SystemExit(f"negative optimality gap: {a.optimality_gap}")
        if a.total_cost - e.total_cost > a.optimality_gap + GAP_TOL:
            raise SystemExit(
                f"gap certificate violated: anytime {a.total_cost} vs exact "
                f"{e.total_cost} with gap {a.optimality_gap}"
            )
        certified += 1
        worst_gap = max(worst_gap, a.optimality_gap)
    return certified, worst_gap


def _committed_baseline() -> float | None:
    """PR-4 recourse batch seconds from the committed local_batch.json."""
    path = RESULTS_DIR / "local_batch.json"
    try:
        return float(json.loads(path.read_text())["recourse_audit"]["batch_s"])
    except (OSError, KeyError, ValueError, TypeError):
        return None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dataset", default=None, help="default: adult (full) / german (smoke)"
    )
    parser.add_argument("--rows", type=int, default=None, help="dataset size")
    parser.add_argument(
        "--cohort", type=int, default=None, help="cohort size (default 1000/120)"
    )
    parser.add_argument("--alpha", type=float, default=0.7)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes + assert parity, bit-identity, gaps and the "
        "parallel perf tripwire",
    )
    args = parser.parse_args(argv)

    from benchmarks.bench_local_batch import build_explainer
    from benchmarks.conftest import result_envelope
    from repro.core.recourse import RecourseSolver

    dataset = args.dataset or ("german" if args.smoke else "adult")
    rows = args.rows if args.rows is not None else (400 if args.smoke else 6_000)
    cohort = args.cohort if args.cohort is not None else (120 if args.smoke else 1_000)

    bundle, lewis = build_explainer(dataset, rows, args.seed)
    actionable = list(bundle.actionable)
    cohort_rows = _cohort_rows(lewis, cohort)

    # Each measurement gets a fresh solver: the solution memo would
    # otherwise let the first run pre-pay for the rest.
    milp_s, milp_out = _timed_batch(
        RecourseSolver(lewis.estimator, actionable, engine="milp"),
        cohort_rows,
        args.alpha,
    )
    serial_solver = RecourseSolver(lewis.estimator, actionable)
    serial_s, serial_out = _timed_batch(serial_solver, cohort_rows, args.alpha)
    parallel_solver = RecourseSolver(lewis.estimator, actionable)
    parallel_s, parallel_out = _timed_batch(
        parallel_solver, cohort_rows, args.alpha, workers=args.workers
    )
    anytime_s, anytime_out = _timed_batch(
        RecourseSolver(lewis.estimator, actionable),
        cohort_rows,
        args.alpha,
        mode="anytime",
    )

    feasible = _check_oracle_parity(milp_out, serial_out)
    _check_bit_identity(serial_out, parallel_out)
    certified, worst_gap = _check_anytime_gaps(serial_out, anytime_out)

    memo = serial_solver.solution_memo_stats()
    committed = _committed_baseline()
    result = {
        "provenance": result_envelope(),
        "dataset": dataset,
        "rows": rows,
        "population": len(lewis.data),
        "smoke": args.smoke,
        "cohort": len(cohort_rows),
        "alpha": args.alpha,
        "workers": args.workers,
        "feasible": feasible,
        "distinct_signatures": memo["solved_signatures"],
        "lp_certified_signatures": memo["certified_by_lp_bound"],
        "donor_seeded_searches": memo["donor_seeded_searches"],
        "search_nodes": memo["search_nodes"],
        "pool_used": parallel_solver.solution_memo_stats()["parallel_batches"] > 0,
        "milp_serial_s": round(milp_s, 6),
        "parametric_serial_s": round(serial_s, 6),
        "parametric_parallel_s": round(parallel_s, 6),
        "anytime_s": round(anytime_s, 6),
        "speedup_vs_milp": round(milp_s / serial_s, 2) if serial_s else float("inf"),
        "committed_pr4_batch_s": committed,
        "speedup_vs_committed_serial": (
            round(committed / serial_s, 2) if committed and serial_s else None
        ),
        "speedup_vs_committed_parallel": (
            round(committed / parallel_s, 2) if committed and parallel_s else None
        ),
        "speedup_vs_committed_anytime": (
            round(committed / anytime_s, 2) if committed and anytime_s else None
        ),
        "anytime_certified": certified,
        "anytime_worst_gap": round(worst_gap, 9),
        "parity_tol": PARITY_TOL,
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / (
        "recourse_scale_smoke.json" if args.smoke else "recourse_scale.json"
    )
    out_path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"wrote {out_path}")

    if args.smoke:
        failures = []
        if parallel_s > serial_s * SMOKE_PARALLEL_SLACK:
            failures.append(
                f"workers={args.workers} audit took {parallel_s:.3f}s vs "
                f"serial {serial_s:.3f}s (> {SMOKE_PARALLEL_SLACK}x slack)"
            )
        if serial_s > milp_s:
            failures.append(
                f"parametric serial {serial_s:.3f}s slower than the MILP "
                f"oracle {milp_s:.3f}s"
            )
        if certified == 0 and feasible > 0:
            failures.append("anytime mode certified no feasible rows")
        if failures:
            print("SMOKE FAILURES:", "; ".join(failures), file=sys.stderr)
            return 1
        print("smoke floors satisfied")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
