"""Seeded fault-plan matrix against a live server: the containment gate.

Each round builds a fresh durable tenant, starts a real HTTP server,
installs one deterministic seeded :class:`repro.faults.FaultPlan` over
the storage / pool / monitor injection points, drives a mixed workload
through the front door, and then restores the tenant from disk with the
faults gone.  Across every round the serving stack must hold four
invariants — the acceptance gate of the fault-injection PR:

1. **No 500s, ever.**  Every injected failure maps to a typed status
   (429 / 503 / 504 / 200-degraded), never an internal error.
2. **No deadlocks.**  Every request answers within a hard timeout.
3. **No silent degradation.**  A 200 under fault pressure either
   matches the fault-free answer bit for bit (the pool-fallback and
   serial/parallel parity contracts) or carries ``degraded: true`` with
   a reason.
4. **Bit-identical recovery.**  Every acknowledged update survives the
   restart; when no ack-window (fsync) fault fired, the restored tenant
   matches the live one's fingerprint and version exactly.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_chaos.py           # 120 plans
    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke   # 50, CI gate

``--smoke`` exits 1 on any invariant violation.  Results (including
per-point fault counts, so CI can archive what was actually injected)
land in ``benchmarks/results/chaos_smoke.json``.
"""

from __future__ import annotations

import argparse
import json
import random
import socket
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

REQUEST_TIMEOUT_S = 20.0  # the deadlock tripwire
UPDATES_PER_ROUND = 8
#: statuses a request may legally end with under injected faults
ALLOWED_STATUSES = {200, 400, 409, 422, 429, 503, 504}


def make_lewis(rows: int = 120):
    import numpy as np

    from repro import fit_table_model
    from repro.core.lewis import Lewis
    from repro.data.table import Table

    rng = np.random.default_rng(7)  # fixed data: rounds vary only by plan
    cols = {
        "a": rng.integers(0, 3, rows).tolist(),
        "b": rng.integers(0, 3, rows).tolist(),
        "c": rng.integers(0, 4, rows).tolist(),
    }
    cols["y"] = [
        int(a + b >= 2) for a, b in zip(cols["a"], cols["b"])
    ]
    table = Table.from_dict(
        cols,
        domains={
            "a": [0, 1, 2], "b": [0, 1, 2], "c": [0, 1, 2, 3], "y": [0, 1],
        },
    )
    # a fitted (serialisable) model: tenants must survive snapshotting
    model = fit_table_model("logistic", table, ["a", "b", "c"], "y", seed=0)
    return Lewis(
        model,
        data=table.select(["a", "b", "c"]),
        attributes=["a", "b", "c"],
        positive_outcome=1,
        infer_orderings=False,
    )


def http(base: str, path: str, payload=None, headers=None, method=None):
    """One request; returns (status, parsed body). Timeouts propagate."""
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=REQUEST_TIMEOUT_S) as r:
            return r.status, json.loads(r.read())
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read())
        except Exception:  # noqa: BLE001 - error bodies are best-effort
            body = {}
        return exc.code, body


def build_plan(seed: int):
    """A randomized-but-deterministic fault plan for one round."""
    import repro.faults as faults

    rng = random.Random(seed)
    points = {}
    # one or two WAL append faults (write / torn / fsync)
    for point in rng.sample(
        ["wal.append.write", "wal.append.torn", "wal.append.fsync"],
        k=rng.choice([1, 2]),
    ):
        points[point] = {"probability": round(rng.uniform(0.05, 0.35), 3)}
    if rng.random() < 0.5:
        points[rng.choice(["store.atomic_write", "store.atomic_write.fsync"])] = {
            "probability": round(rng.uniform(0.05, 0.3), 3)
        }
    if rng.random() < 0.7:
        points["monitor.refresh"] = {
            "probability": round(rng.uniform(0.2, 0.6), 3)
        }
    if rng.random() < 0.5:
        # crash the first chunk in every fork-started pool worker
        points["recourse.chunk"] = {"action": "exit", "once": True}
    return faults.FaultPlan(points, seed=seed), points


def run_round(seed: int) -> dict:
    """One seeded plan against one fresh tenant; returns the verdict."""
    import repro.faults as faults
    from repro.service.server import create_server
    from repro.store import ArtifactStore, Registry, create_tenant

    failures: list[str] = []
    statuses: dict[str, int] = {}

    def note(status: int, allowed=ALLOWED_STATUSES, what: str = "") -> None:
        statuses[str(status)] = statuses.get(str(status), 0) + 1
        if status == 500:
            failures.append(f"500 on {what}")
        elif status not in allowed:
            failures.append(f"unexpected {status} on {what}")

    with tempfile.TemporaryDirectory(prefix="chaos-") as tmp:
        store = ArtifactStore(tmp)
        create_tenant(store, "t", make_lewis()).close()
        registry = Registry(store, background=True)
        server = create_server(registry=registry, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        live = {}
        try:
            # fault-free reference: the serial cohort answer (workers=1)
            # that every non-degraded 200 must reproduce bit for bit
            status, body = http(
                base,
                "/v1/t/recourse/batch",
                {"indices": list(range(6)), "actionable": ["a", "b"],
                 "alpha": 0.6, "workers": 1},
            )
            assert status == 200, f"reference solve failed: {status}"
            reference = body["result"]["recourses"]

            plan, spec = build_plan(seed)
            acked = attempted = 0
            with faults.plan(plan):
                status, _ = http(
                    base,
                    "/v1/t/monitors",
                    {
                        "kind": "score",
                        "params": {"attribute": "a", "value": 2, "baseline": 0},
                        "threshold": 0.05,
                    },
                )
                note(status, what="monitor register")

                # the probe: same cohort, pool path, maybe a deadline
                rng = random.Random(seed ^ 0x5EED)
                headers = (
                    {"X-Repro-Deadline-Ms": "30000"}
                    if rng.random() < 0.5
                    else None
                )
                status, body = http(
                    base,
                    "/v1/t/recourse/batch",
                    {"indices": list(range(6)), "actionable": ["a", "b"],
                     "alpha": 0.6, "workers": 2},
                    headers=headers,
                )
                note(status, what="recourse probe")
                if status == 200:
                    if body.get("degraded"):
                        if not body.get("degraded_reason"):
                            failures.append("degraded 200 without a reason")
                    elif body["result"]["recourses"] != reference:
                        failures.append(
                            "non-degraded 200 differs from fault-free answer"
                        )

                for i in range(UPDATES_PER_ROUND):
                    attempted += 1
                    status, _ = http(
                        base,
                        "/v1/t/update",
                        {"insert": [{"a": i % 3, "b": (i + 1) % 3, "c": 0}]},
                    )
                    note(status, what=f"update {i}")
                    if status == 200:
                        acked += 1

                for path in ("/healthz", "/readyz", "/v1/t/health"):
                    status, _ = http(base, path)
                    note(status, what=f"GET {path}")
                counts = plan.counts()

            # post-fault live state (plan gone; reads must work)
            status, body = http(base, "/v1/t/health")
            if status == 200:
                live = {
                    "fingerprint": body.get("fingerprint"),
                    "table_version": body.get("table_version"),
                    "n_rows": body.get("n_rows"),
                }
            else:
                note(status, allowed={503}, what="final health")
        except socket.timeout:
            failures.append("request deadlock (timeout)")
            counts, acked, attempted, spec = {}, 0, 0, {}
        finally:
            server.shutdown()
            server.server_close()
            server.monitors.close()
            registry.close(checkpoint=False)

        # -- recovery, faults gone: every ack must have survived --------
        recovery = Registry(store)
        try:
            session = recovery.get("t")
            inserted = session.lewis.data.n_rows - 120
            if inserted < acked:
                failures.append(
                    f"lost acknowledged updates: {inserted} < {acked}"
                )
            if inserted > attempted:
                failures.append(
                    f"phantom updates: {inserted} > {attempted} attempted"
                )
            fsync_fired = (
                counts.get("wal.append.fsync", {}).get("fired", 0) > 0
            )
            if live and not fsync_fired:
                # no ack-window fault: recovery must be bit-identical
                if (
                    session.fingerprint != live["fingerprint"]
                    or session.table_version != live["table_version"]
                ):
                    failures.append("recovered state differs from live state")
            recovered = {
                "n_rows": int(session.lewis.data.n_rows),
                "table_version": int(session.table_version),
            }
        except Exception as exc:  # noqa: BLE001 - recovery must not raise
            failures.append(f"recovery failed: {type(exc).__name__}: {exc}")
            recovered = None
        finally:
            recovery.close(checkpoint=False)

    return {
        "seed": seed,
        "plan": spec,
        "fault_counts": counts,
        "statuses": statuses,
        "acked_updates": acked,
        "attempted_updates": attempted,
        "recovered": recovered,
        "failures": failures,
        "ok": not failures,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="50-plan matrix; exit 1 on any containment violation (CI gate)",
    )
    parser.add_argument(
        "--plans", type=int, default=None,
        help="number of seeded fault plans (default: 50 smoke, 120 full)",
    )
    parser.add_argument("--seed", type=int, default=0, help="first plan seed")
    args = parser.parse_args(argv)
    plans = args.plans or (50 if args.smoke else 120)

    started = time.perf_counter()
    rounds = []
    for k in range(plans):
        verdict = run_round(args.seed + k)
        rounds.append(verdict)
        mark = "ok" if verdict["ok"] else "FAIL " + "; ".join(verdict["failures"])
        print(f"[{k + 1:3d}/{plans}] seed={verdict['seed']:<4d} {mark}")

    total_fired: dict[str, int] = {}
    for verdict in rounds:
        for point, c in verdict["fault_counts"].items():
            total_fired[point] = total_fired.get(point, 0) + c["fired"]
    failed = [r for r in rounds if not r["ok"]]
    report = {
        "plans": plans,
        "elapsed_s": round(time.perf_counter() - started, 2),
        "faults_fired_total": total_fired,
        "failed_rounds": len(failed),
        "failures": [
            {"seed": r["seed"], "failures": r["failures"]} for r in failed
        ],
        "rounds": rounds,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    out = RESULTS_DIR / "chaos_smoke.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"\n{plans} plans, {sum(total_fired.values())} faults fired "
        f"across {len(total_fired)} points, {len(failed)} violations "
        f"-> {out}"
    )
    if failed:
        for r in failed:
            print(f"  seed {r['seed']}: {'; '.join(r['failures'])}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
