"""Scalar-loop vs batched global explanations over the contingency engine.

The vectorized refactor routes `explain_global` through
`ScoreEstimator.scores_batch`, which answers every (attribute, value
pair) contrast of the explanation in a handful of tensor passes instead
of ~8 scalar probability queries per pair.  This benchmark times both
paths on German and Adult — the same operation Table 2's "global" column
measures — so the speedup stays tracked in the bench trajectory, and
asserts the two paths agree to 1e-12 (the CI parity guarantee).
"""

import pytest

from repro.core.explanations import SCORE_KEYS, build_global_explanation

from benchmarks.conftest import write_json, write_report

DATASETS = ["german", "adult"]

_rows: dict[str, dict[str, float]] = {}


def _record(dataset: str, kind: str, seconds: float) -> None:
    _rows.setdefault(dataset, {})[kind] = seconds
    lines = [
        "Engine batching - explain_global(max_pairs_per_attribute=6) seconds",
        f"{'dataset':12s} {'scalar':>9s} {'batched':>9s} {'speedup':>8s}",
    ]
    payload: dict[str, dict] = {}
    for name in DATASETS:
        row = _rows.get(name, {})
        scalar = row.get("scalar", float("nan"))
        batched = row.get("batched", float("nan"))
        speedup = scalar / batched if scalar == scalar and batched == batched else float("nan")
        lines.append(
            f"{name:12s} {scalar:9.4f} {batched:9.4f} {speedup:7.1f}x"
        )
        if row:
            payload[name] = {
                "scalar_s": round(scalar, 6) if scalar == scalar else None,
                "batched_s": round(batched, 6) if batched == batched else None,
                "speedup": round(speedup, 2) if speedup == speedup else None,
            }
    write_report("engine_batched", lines)
    write_json(
        "engine_batched",
        {
            "benchmark": "engine_batched",
            "operation": "explain_global(max_pairs_per_attribute=6)",
            "datasets": payload,
        },
    )


@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("mode", ["scalar", "batched"])
def test_global_explanation_modes(benchmark, explainers, dataset, mode):
    lewis = explainers[dataset]
    result = benchmark.pedantic(
        lambda: build_global_explanation(
            lewis.estimator,
            lewis.attributes,
            max_pairs_per_attribute=6,
            batched=(mode == "batched"),
        ),
        rounds=3,
        iterations=1,
    )
    assert result.attribute_scores
    _record(dataset, mode, benchmark.stats.stats.mean)


@pytest.mark.parametrize("dataset", DATASETS)
def test_batched_matches_scalar(explainers, dataset):
    lewis = explainers[dataset]
    fast = build_global_explanation(
        lewis.estimator, lewis.attributes, max_pairs_per_attribute=6, batched=True
    )
    slow = build_global_explanation(
        lewis.estimator, lewis.attributes, max_pairs_per_attribute=6, batched=False
    )
    for a, b in zip(fast.attribute_scores, slow.attribute_scores):
        assert a.attribute == b.attribute
        for key in SCORE_KEYS:
            assert abs(a.score(key) - b.score(key)) <= 1e-12
