"""Serving-layer benchmark: cache-hit latency and incremental updates.

Measures the two speedups the service subsystem exists for and persists
them as machine-readable JSON under ``benchmarks/results/service.json``
so the perf trajectory is diffable across PRs:

* **cache-hit latency** — a repeated ``explain_global`` request answered
  from the result cache vs recomputed (target: >= 10x),
* **re-explain-after-append** — appending a batch of rows via
  ``apply_delta`` (in-place tensor maintenance + targeted cache purge)
  and re-explaining, vs rebuilding the explainer from scratch over the
  grown table and explaining (target: >= 5x).

The rebuild baseline reuses the already-trained model — it isolates the
explainer/engine rebuild the serving layer avoids, not model training,
so the reported speedups are conservative.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_service.py             # full
    PYTHONPATH=src python benchmarks/bench_service.py --smoke     # CI guard

``--smoke`` shrinks the dataset and *asserts* conservative speedup
floors (exit 1 on regression); the full run just records the numbers.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

# Conservative floors for --smoke.  At full scale (adult, ~6k-row
# population) the measured speedups are ~2000x cache-hit and ~10x
# incremental-vs-rebuild; smoke runs a much smaller population where the
# rebuild baseline is cheap, so the regression floors sit well below the
# full-scale targets — they catch "the cache/delta path stopped working",
# not noise.
SMOKE_MIN_HIT_SPEEDUP = 5.0
SMOKE_MIN_INCREMENTAL_SPEEDUP = 1.2


def _timed(fn, repeats: int) -> float:
    """Median wall time of ``fn`` over ``repeats`` runs."""
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def build_explainer(dataset: str, rows: int, seed: int):
    from repro import Lewis, fit_table_model, load_dataset, train_test_split

    bundle = load_dataset(dataset, n_rows=rows, seed=seed)
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=seed)
    model = fit_table_model(
        "random_forest",
        train,
        bundle.feature_names,
        bundle.label,
        seed=seed,
        n_estimators=15,
        max_depth=8,
    )
    lewis = Lewis(
        model,
        data=test,
        graph=bundle.graph,
        positive_outcome=bundle.positive_label,
    )
    return bundle, model, lewis


def run(dataset: str, rows: int, append: int, repeats: int, seed: int) -> dict:
    from repro import Lewis
    from repro.service import ExplainerSession

    bundle, model, lewis = build_explainer(dataset, rows, seed)
    initial_n = len(lewis.data)
    session = ExplainerSession(lewis)
    max_pairs = 6

    # -- cache-hit latency -------------------------------------------------
    miss_s = _timed(
        lambda: session.explain_global(max_pairs_per_attribute=max_pairs), 1
    )
    hit_s = _timed(
        lambda: session.explain_global(max_pairs_per_attribute=max_pairs),
        max(repeats, 5),
    )

    # -- re-explain-after-append ------------------------------------------
    def incremental_round() -> None:
        rows_batch = [lewis.data.row(i % initial_n) for i in range(append)]
        session.update({"insert": rows_batch})
        session.explain_global(max_pairs_per_attribute=max_pairs)

    incremental_s = _timed(incremental_round, repeats)

    def rebuild_round() -> None:
        fresh = Lewis(
            model,
            data=lewis.data,
            graph=bundle.graph,
            positive_outcome=bundle.positive_label,
        )
        fresh.explain_global(max_pairs_per_attribute=max_pairs)

    rebuild_s = _timed(rebuild_round, repeats)
    session.close()

    return {
        "dataset": dataset,
        "rows": rows,
        "population": len(lewis.data),
        "append_batch": append,
        "repeats": repeats,
        "explain_miss_s": round(miss_s, 6),
        "explain_hit_s": round(hit_s, 6),
        "cache_hit_speedup": round(miss_s / hit_s, 2) if hit_s else float("inf"),
        "reexplain_incremental_s": round(incremental_s, 6),
        "reexplain_rebuild_s": round(rebuild_s, 6),
        "incremental_speedup": round(rebuild_s / incremental_s, 2)
        if incremental_s
        else float("inf"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dataset", default=None, help="default: adult (full) / german (smoke)"
    )
    parser.add_argument("--rows", type=int, default=None, help="dataset size")
    parser.add_argument(
        "--append", type=int, default=20, help="rows appended per update round"
    )
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes + assert conservative speedup floors (CI guard)",
    )
    args = parser.parse_args(argv)

    from benchmarks.conftest import result_envelope

    dataset = args.dataset or ("german" if args.smoke else "adult")
    rows = args.rows if args.rows is not None else (300 if args.smoke else 20_000)
    result = run(dataset, rows, args.append, args.repeats, args.seed)
    result["smoke"] = args.smoke
    result = {"provenance": result_envelope(), **result}

    RESULTS_DIR.mkdir(exist_ok=True)
    # Smoke runs use tiny sizes; keep them out of the committed
    # full-scale trajectory file.
    out_path = RESULTS_DIR / ("service_smoke.json" if args.smoke else "service.json")
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {out_path}")

    if args.smoke:
        failures = []
        if result["cache_hit_speedup"] < SMOKE_MIN_HIT_SPEEDUP:
            failures.append(
                f"cache_hit_speedup {result['cache_hit_speedup']} < "
                f"{SMOKE_MIN_HIT_SPEEDUP}"
            )
        if result["incremental_speedup"] < SMOKE_MIN_INCREMENTAL_SPEEDUP:
            failures.append(
                f"incremental_speedup {result['incremental_speedup']} < "
                f"{SMOKE_MIN_INCREMENTAL_SPEEDUP}"
            )
        if failures:
            print("SMOKE FAILURES:", "; ".join(failures), file=sys.stderr)
            return 1
        print("smoke floors satisfied")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
