"""Streaming-monitor benchmark: incremental refresh vs recompute-per-batch.

The monitor subsystem's perf claim: after a WAL delta batch, refreshing
every standing monitor from the engine's *maintained* count tensors is
much cheaper than recomputing each summary on a fresh estimator — the
recompute-per-batch straw man a naive drift dashboard would run. Both
paths produce bit-identical summaries (asserted every batch here; the
parity property is tested in ``tests/test_monitor_stream.py``), so the
race is purely about the incremental-view-maintenance discipline.

Measures, over N insert batches against one session with a score, a
fairness, a monotonicity and a recourse monitor registered:

* median per-batch latency of ``MonitorSet.refresh()`` (the subsystem's
  all-monitors incremental pass)
* per monitor kind, the incremental summary vs the from-scratch rebuild
  (re-predict the population, recount, re-solve) and their speedups
* the headline ``score_speedup`` — the NEC-score monitor's incremental
  vs rebuilt refresh (target: >= 5x at adult scale)

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_monitor_stream.py           # full
    PYTHONPATH=src python benchmarks/bench_monitor_stream.py --smoke   # CI guard

``--smoke`` shrinks the dataset and *asserts* that incremental beats the
full recompute (exit 1 on regression); the full run records trajectory
numbers to ``benchmarks/results/monitor_stream.json``.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: conservative floor for --smoke: tiny tables shrink the recount cost
#: the incremental path skips, so just require a win, not the full 5x.
SMOKE_MIN_SPEEDUP = 1.0
FULL_TARGET_SPEEDUP = 5.0


def build_session(dataset: str, rows: int, seed: int):
    from repro import fit_table_model, load_dataset, train_test_split
    from repro.service import ExplainerSession

    bundle = load_dataset(dataset, n_rows=rows, seed=seed)
    train, test = train_test_split(bundle.table, test_fraction=0.3, seed=seed)
    model = fit_table_model(
        "random_forest",
        train,
        bundle.feature_names,
        bundle.label,
        seed=seed,
        n_estimators=15,
        max_depth=8,
    )
    from repro import Lewis

    lewis = Lewis(
        model,
        data=test.select(bundle.feature_names),
        graph=bundle.graph,
        positive_outcome=bundle.positive_label,
    )
    return bundle, ExplainerSession(lewis, default_actionable=bundle.actionable)


def monitor_payloads(bundle) -> list[dict]:
    attribute = bundle.feature_names[0]
    column = bundle.table.column(attribute)
    protected = next(
        (n for n in bundle.feature_names if n in ("sex", "gender", "race")),
        bundle.feature_names[-1],
    )
    return [
        {
            "kind": "score",
            "params": {
                "attribute": attribute,
                "value": column.categories[-1],
                "baseline": column.categories[0],
            },
            "threshold": 0.05,
        },
        {"kind": "fairness", "params": {"attribute": protected}},
        {"kind": "monotonicity", "params": {"attribute": attribute}},
        {
            "kind": "recourse",
            "params": {"actionable": list(bundle.actionable), "probe_size": 8},
        },
    ]


def run(dataset: str, rows: int, batches: int, batch_rows: int, seed: int) -> dict:
    import numpy as np

    from repro.monitor import MonitorSet, rebuild_summary

    bundle, session = build_session(dataset, rows, seed)
    monitors = MonitorSet(session)
    ids = [monitors.add(payload)["id"] for payload in monitor_payloads(bundle)]
    specs = {i: monitors._monitors[i]["spec"] for i in ids}

    from repro.monitor.summaries import compute_summary

    rng = np.random.default_rng(seed)
    source = session.lewis.data
    refresh_times: list[float] = []
    per_kind_inc: dict[str, list[float]] = {specs[i]["kind"]: [] for i in ids}
    per_kind_reb: dict[str, list[float]] = {specs[i]["kind"]: [] for i in ids}
    for _ in range(batches):
        picks = rng.integers(0, len(source), size=batch_rows)
        session.update({"insert": [source.row(int(i)) for i in picks]})

        # per-monitor race, timed *before* the lane refresh so the
        # incremental side is the first (cold-memo) evaluation at this
        # table version: incremental summary vs from-scratch rebuild
        # (re-predict the population, recount, re-solve)
        rebuilt = {}
        for i in ids:
            kind, spec = specs[i]["kind"], specs[i]
            start = time.perf_counter()
            incremental = compute_summary(session.lewis, spec)
            mid = time.perf_counter()
            rebuilt[i] = rebuild_summary(session.lewis, spec)
            per_kind_inc[kind].append(mid - start)
            per_kind_reb[kind].append(time.perf_counter() - mid)
            assert incremental == rebuilt[i], i

        # the subsystem path: one lane-dispatched refresh of all
        # monitors (detector evaluation included)
        start = time.perf_counter()
        monitors.refresh()
        refresh_times.append(time.perf_counter() - start)

        for i in ids:  # the race is only fair if all paths agree exactly
            assert monitors._monitors[i]["summary"] == rebuilt[i], i

    def med(times: list[float]) -> float:
        return statistics.median(times)

    kinds = {
        kind: {
            "incremental_s": round(med(per_kind_inc[kind]), 6),
            "recompute_s": round(med(per_kind_reb[kind]), 6),
            "speedup": round(med(per_kind_reb[kind]) / med(per_kind_inc[kind]), 2),
        }
        for kind in per_kind_inc
    }
    incremental = sum(med(per_kind_inc[k]) for k in per_kind_inc)
    recompute = sum(med(per_kind_reb[k]) for k in per_kind_reb)
    return {
        "dataset": dataset,
        "rows": rows,
        "population": len(session.lewis.data),
        "monitors": [specs[i]["kind"] for i in ids],
        "batches": batches,
        "batch_rows": batch_rows,
        "refresh_all_s": round(med(refresh_times), 6),
        "per_kind": kinds,
        "incremental_per_batch_s": round(incremental, 6),
        "recompute_per_batch_s": round(recompute, 6),
        "speedup": round(recompute / incremental, 2) if incremental else float("inf"),
        "score_speedup": kinds["score"]["speedup"],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dataset", default=None, help="default: adult (full) / german (smoke)"
    )
    parser.add_argument("--rows", type=int, default=None, help="dataset size")
    parser.add_argument("--batches", type=int, default=None, help="delta batches")
    parser.add_argument("--batch-rows", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes + assert incremental beats recompute (CI guard)",
    )
    args = parser.parse_args(argv)

    from benchmarks.conftest import SIZES, result_envelope

    dataset = args.dataset or ("german" if args.smoke else "adult")
    rows = args.rows if args.rows is not None else (
        300 if args.smoke else SIZES[dataset]
    )
    batches = args.batches if args.batches is not None else (8 if args.smoke else 30)
    result = run(dataset, rows, batches, args.batch_rows, args.seed)
    result["smoke"] = args.smoke
    result = {"provenance": result_envelope(), **result}

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / (
        "monitor_stream_smoke.json" if args.smoke else "monitor_stream.json"
    )
    out_path.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {out_path}")

    if args.smoke:
        if result["speedup"] <= SMOKE_MIN_SPEEDUP:
            print(
                f"SMOKE FAILURE: incremental refresh no faster than recompute "
                f"(speedup {result['speedup']})",
                file=sys.stderr,
            )
            return 1
        print("smoke floor satisfied: incremental beats full recompute")
    elif result["score_speedup"] < FULL_TARGET_SPEEDUP:
        print(
            f"WARNING: score-monitor speedup {result['score_speedup']} below "
            f"the {FULL_TARGET_SPEEDUP}x target at {dataset} scale",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
