"""Figures 5-7: local explanations (German, Adult, Drug).

For one rejected and one approved individual per dataset, the benchmark
regenerates the positive/negative contribution bars and asserts the
paper's qualitative reading:

* German (Fig 5): for a rejected applicant, weak ``status`` / ``age`` /
  ``employment``-type attributes carry the negative contributions.
* Adult (Fig 6): for a rejected individual, ``marital`` contributes
  negatively; for the approved one, current values do not hurt.
* Drug (Fig 7): higher education contributes toward the "never used"
  side of the prediction.
"""

from benchmarks.conftest import write_report


def _render_local(title, explanation):
    lines = [
        title,
        f"{'attribute':16s} {'value':18s} {'positive':>8s} {'negative':>8s}",
    ]
    for c in explanation.contributions:
        lines.append(
            f"{c.attribute:16s} {str(c.value):18s} {c.positive:8.2f} {c.negative:8.2f}"
        )
    return lines


def _local_pair(lewis):
    neg = int(lewis.negative_indices()[0])
    pos = int(lewis.positive_indices()[0])
    return lewis.explain_local(index=neg), lewis.explain_local(index=pos)


def test_fig5_german_local(benchmark, explainers):
    lewis = explainers["german"]
    negative, positive = benchmark.pedantic(
        lambda: _local_pair(lewis), rounds=1, iterations=1
    )
    write_report(
        "fig5_german_local",
        _render_local("Figure 5 - rejected applicant (German)", negative)
        + [""]
        + _render_local("Figure 5 - approved applicant (German)", positive),
    )
    # The rejected applicant has at least one strong negative contributor.
    assert max(c.negative for c in negative.contributions) > 0.3
    # The approved applicant's values support the outcome on net.
    assert max(c.positive for c in positive.contributions) > 0.3


def test_fig6_adult_local(benchmark, explainers):
    lewis = explainers["adult"]
    negative, positive = benchmark.pedantic(
        lambda: _local_pair(lewis), rounds=1, iterations=1
    )
    write_report(
        "fig6_adult_local",
        _render_local("Figure 6 - low-income individual (Adult)", negative)
        + [""]
        + _render_local("Figure 6 - high-income individual (Adult)", positive),
    )
    assert max(c.negative for c in negative.contributions) > 0.2
    assert max(c.positive for c in positive.contributions) > 0.2


def test_fig7_drug_local(benchmark, explainers):
    lewis = explainers["drug"]
    negative, positive = benchmark.pedantic(
        lambda: _local_pair(lewis), rounds=1, iterations=1
    )
    write_report(
        "fig7_drug_local",
        _render_local("Figure 7a - predicted user (Drug)", negative)
        + [""]
        + _render_local("Figure 7b - predicted non-user (Drug)", positive),
    )
    # Education's favourable side points toward non-usage (paper's note):
    # for the predicted non-user, edu should not be a top negative factor.
    non_user_edu = positive.contribution_of("edu")
    assert non_user_edu.negative <= max(
        c.negative for c in positive.contributions
    )
