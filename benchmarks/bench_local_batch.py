"""Cohort fast-path benchmark: batched local explanations & recourse audits.

Measures the two speedups the cohort fast path exists for and persists
them as machine-readable JSON under ``benchmarks/results/local_batch.json``:

* **cohort local explanations** — ``Lewis.explain_local_batch`` over N
  rows (probes deduplicated, one regression matrix pass per attribute
  group) vs the historical per-row scalar loop
  (``build_local_explanation(..., batched=False)``); target: >= 10x at
  1k rows on adult,
* **cohort recourse audit** — ``RecourseSolver.solve_batch`` (one logit
  matrix pass for base probabilities + one IP build/solve per distinct
  signature) vs calling ``solve`` row by row on a fresh solver.

Both fast paths are parity-checked against their scalar loops at 1e-12
inside the timed run, so a speedup can never be bought with a wrong
answer.

Run standalone (no pytest)::

    PYTHONPATH=src python benchmarks/bench_local_batch.py            # full
    PYTHONPATH=src python benchmarks/bench_local_batch.py --smoke    # CI guard

``--smoke`` shrinks the cohort and *asserts* that each batch path is at
least as fast as its scalar loop (exit 1 on regression — the cheap
perf-regression tripwire); the full run records the numbers.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
for entry in (str(REPO_ROOT / "src"), str(REPO_ROOT)):
    if entry not in sys.path:
        sys.path.insert(0, entry)

RESULTS_DIR = Path(__file__).resolve().parent / "results"

PARITY_TOL = 1e-12

#: smoke floor — the batch path must never be slower than the scalar
#: loop, whatever the scale; full runs target >= 10x for the local path.
SMOKE_MIN_SPEEDUP = 1.0


def build_explainer(dataset: str, rows: int, seed: int):
    from repro import Lewis, fit_table_model, load_dataset, train_test_split

    bundle = load_dataset(dataset, n_rows=rows, seed=seed)
    train, test = train_test_split(bundle.table, test_fraction=0.5, seed=seed)
    model = fit_table_model(
        "random_forest",
        train,
        bundle.feature_names,
        bundle.label,
        seed=seed,
        n_estimators=15,
        max_depth=8,
    )
    lewis = Lewis(
        model,
        data=test,
        graph=bundle.graph,
        positive_outcome=bundle.positive_label,
    )
    return bundle, lewis


def _timed(fn, repeats: int):
    """(median wall time, last result) of ``fn`` over ``repeats`` runs."""
    times, result = [], None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times), result


def bench_local(lewis, cohort: int, repeats: int) -> dict:
    from repro.core.explanations import build_local_explanation

    indices = [int(i) for i in range(min(cohort, len(lewis.data)))]

    # Warm the per-attribute regression models once: both paths share
    # the estimator's model cache, so neither timing pays the one-time
    # fit and the comparison isolates probe evaluation.
    lewis.explain_local_batch(indices[:1])

    batch_s, batched = _timed(
        lambda: lewis.explain_local_batch(indices), repeats
    )

    def scalar_loop():
        return [
            build_local_explanation(
                lewis.estimator,
                lewis.data.row_codes(i),
                bool(lewis.positive[i]),
                lewis.attributes,
                batched=False,
            )
            for i in indices
        ]

    scalar_s, scalar = _timed(scalar_loop, repeats)

    for fast, slow in zip(batched, scalar):
        for a, b in zip(fast.contributions, slow.contributions):
            if (
                abs(a.positive - b.positive) > PARITY_TOL
                or abs(a.negative - b.negative) > PARITY_TOL
                or a.positive_foil != b.positive_foil
                or a.negative_foil != b.negative_foil
            ):
                raise SystemExit(f"local parity violation: {a} != {b}")

    return {
        "cohort": len(indices),
        "batch_s": round(batch_s, 6),
        "scalar_s": round(scalar_s, 6),
        "speedup": round(scalar_s / batch_s, 2) if batch_s else float("inf"),
        "parity_tol": PARITY_TOL,
    }


def bench_recourse(lewis, actionable, cohort: int, alpha: float) -> dict:
    from repro.core.recourse import RecourseSolver
    from repro.utils.exceptions import RecourseInfeasibleError

    negative = [int(i) for i in lewis.negative_indices()]
    indices = (negative * (cohort // max(len(negative), 1) + 1))[:cohort]
    rows = [lewis.data.row_codes(i) for i in indices]

    batch_solver = RecourseSolver(lewis.estimator, list(actionable))
    start = time.perf_counter()
    batched = batch_solver.solve_batch(rows, alpha=alpha, on_infeasible="none")
    batch_s = time.perf_counter() - start

    scalar_solver = RecourseSolver(lewis.estimator, list(actionable))
    start = time.perf_counter()
    scalar = []
    for row in rows:
        try:
            scalar.append(scalar_solver.solve(row, alpha=alpha))
        except RecourseInfeasibleError:
            scalar.append(None)
    scalar_s = time.perf_counter() - start

    feasible = 0
    for fast, slow in zip(batched, scalar):
        if (fast is None) != (slow is None):
            raise SystemExit("recourse parity violation: feasibility differs")
        if fast is None:
            continue
        feasible += 1
        if fast.as_dict() != slow.as_dict() or abs(
            fast.total_cost - slow.total_cost
        ) > PARITY_TOL:
            raise SystemExit(
                f"recourse parity violation: {fast.as_dict()} != {slow.as_dict()}"
            )

    memo = batch_solver.solution_memo_stats()
    return {
        "cohort": len(indices),
        "alpha": alpha,
        "feasible": feasible,
        "distinct_signatures": memo["solved_signatures"],
        "batch_s": round(batch_s, 6),
        "scalar_s": round(scalar_s, 6),
        "speedup": round(scalar_s / batch_s, 2) if batch_s else float("inf"),
        "parity_tol": PARITY_TOL,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dataset", default=None, help="default: adult (full) / german (smoke)"
    )
    parser.add_argument("--rows", type=int, default=None, help="dataset size")
    parser.add_argument(
        "--cohort", type=int, default=None, help="cohort size (default 1000/60)"
    )
    parser.add_argument("--alpha", type=float, default=0.7)
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timing repeats for the local path (median); recourse runs "
        "once per solver since its solution memo would distort repeats",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes + assert the batch paths beat the scalar loops",
    )
    args = parser.parse_args(argv)

    from benchmarks.conftest import result_envelope

    dataset = args.dataset or ("german" if args.smoke else "adult")
    rows = args.rows if args.rows is not None else (400 if args.smoke else 6_000)
    # Smoke recycles the negative pool into a 120-row cohort: duplicate
    # signatures are the realistic audit shape and what dedup amortises.
    cohort = args.cohort if args.cohort is not None else (120 if args.smoke else 1_000)

    bundle, lewis = build_explainer(dataset, rows, args.seed)
    local = bench_local(lewis, cohort, max(args.repeats, 1))
    recourse = bench_recourse(lewis, bundle.actionable, cohort, args.alpha)

    result = {
        "provenance": result_envelope(),
        "dataset": dataset,
        "rows": rows,
        "population": len(lewis.data),
        "smoke": args.smoke,
        "local_explanations": local,
        "recourse_audit": recourse,
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = RESULTS_DIR / (
        "local_batch_smoke.json" if args.smoke else "local_batch.json"
    )
    out_path.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"wrote {out_path}")

    if args.smoke:
        failures = []
        for name, section in (
            ("local_explanations", local),
            ("recourse_audit", recourse),
        ):
            if section["speedup"] < SMOKE_MIN_SPEEDUP:
                failures.append(
                    f"{name} speedup {section['speedup']} < {SMOKE_MIN_SPEEDUP} "
                    "(batch path slower than the scalar loop)"
                )
        if failures:
            print("SMOKE FAILURES:", "; ".join(failures), file=sys.stderr)
            return 1
        print("smoke floors satisfied")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
