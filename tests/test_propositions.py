"""Integration tests: the paper's Propositions 4.1-4.4 against SCM truth.

These are the correctness core of the reproduction: each proposition is
checked on synthetic models where Pearl's three-step procedure gives the
exact answer.
"""

import numpy as np
import pytest

from repro.causal.equations import linear_threshold, logistic_binary, root_categorical
from repro.causal.ground_truth import GroundTruthScores
from repro.causal.scm import StructuralCausalModel, StructuralEquation
from repro.core.bounds import BoundsEstimator
from repro.core.scores import ScoreEstimator


def _make_setup(scm, predict, n=40_000, seed=0, diagram_nodes=None):
    """Sample the SCM, apply the black box, wire estimators + truth."""
    table = scm.sample(n, seed=seed)
    features = table.select(diagram_nodes or scm.nodes)
    positive = np.asarray(predict(features), dtype=bool)
    diagram = scm.diagram.subgraph(diagram_nodes or scm.nodes)
    estimator = ScoreEstimator(features, positive, diagram=diagram)
    truth = GroundTruthScores(
        scm, predict=predict, positive=lambda o: np.asarray(o, dtype=bool),
        n_samples=n, seed=seed + 1,
    )
    return estimator, truth


@pytest.fixture(scope="module")
def monotone_case(toy_scm):
    """Monotone algorithm over the confounded toy SCM."""
    predict = lambda t: (t.codes("X") + t.codes("Z")) >= 2  # noqa: E731
    return _make_setup(toy_scm, predict, diagram_nodes=["Z", "X"])


@pytest.fixture(scope="module")
def nonmonotone_case(toy_scm):
    """Non-monotone algorithm (zig-zag in X given Z) over the same SCM.

    Positive iff (X=1, Z=0) or (X in {0,2}, Z=1): every (X, Z) cell holds
    both outcomes across the population, so all scores have support.
    """

    def predict(t):
        x, z = t.codes("X"), t.codes("Z")
        return ((x == 1) & (z == 0)) | ((x != 1) & (z == 1))

    return _make_setup(toy_scm, predict, diagram_nodes=["Z", "X"])


CONTRASTS = [(2, 0), (2, 1), (1, 0)]


class TestProposition41Bounds:
    """Bounds hold with or without monotonicity."""

    @pytest.mark.parametrize("hi,lo", CONTRASTS)
    def test_truth_within_bounds_monotone(self, monotone_case, hi, lo):
        estimator, truth = monotone_case
        bounds = BoundsEstimator(estimator).bounds({"X": hi}, {"X": lo})
        exact = truth.scores("X", hi, lo)
        assert bounds.contains(
            exact["necessity"],
            exact["sufficiency"],
            exact["necessity_sufficiency"],
            tol=0.04,
        )

    @pytest.mark.parametrize("hi,lo", CONTRASTS)
    def test_truth_within_bounds_nonmonotone(self, nonmonotone_case, hi, lo):
        estimator, truth = nonmonotone_case
        bounds = BoundsEstimator(estimator).bounds({"X": hi}, {"X": lo})
        exact = truth.scores("X", hi, lo)
        assert bounds.contains(
            exact["necessity"],
            exact["sufficiency"],
            exact["necessity_sufficiency"],
            tol=0.04,
        )

    @pytest.mark.parametrize("z", [0, 1])
    def test_contextual_bounds_monotone(self, monotone_case, z):
        estimator, truth = monotone_case
        bounds = BoundsEstimator(estimator).bounds({"X": 2}, {"X": 0}, {"Z": z})
        exact = truth.scores("X", 2, 0, {"Z": z})
        assert bounds.contains(
            exact["necessity"],
            exact["sufficiency"],
            exact["necessity_sufficiency"],
            tol=0.04,
        )


class TestProposition42PointEstimates:
    """Under monotonicity the point estimators match ground truth."""

    @pytest.mark.parametrize("hi,lo", CONTRASTS)
    def test_nesuf_matches_truth(self, monotone_case, hi, lo):
        estimator, truth = monotone_case
        est = estimator.necessity_sufficiency({"X": hi}, {"X": lo})
        exact = truth.necessity_sufficiency("X", hi, lo)
        assert est == pytest.approx(exact, abs=0.04)

    @pytest.mark.parametrize("hi,lo", CONTRASTS)
    def test_sufficiency_matches_truth(self, monotone_case, hi, lo):
        estimator, truth = monotone_case
        est = estimator.sufficiency({"X": hi}, {"X": lo})
        exact = truth.sufficiency("X", hi, lo)
        assert est == pytest.approx(exact, abs=0.05)

    @pytest.mark.parametrize("hi,lo", CONTRASTS)
    def test_necessity_matches_truth(self, monotone_case, hi, lo):
        estimator, truth = monotone_case
        est = estimator.necessity({"X": hi}, {"X": lo})
        exact = truth.necessity("X", hi, lo)
        assert est == pytest.approx(exact, abs=0.05)

    @pytest.mark.parametrize("z", [0, 1])
    def test_contextual_estimates_match_truth(self, monotone_case, z):
        estimator, truth = monotone_case
        est = estimator.scores({"X": 2}, {"X": 0}, {"Z": z})
        exact = truth.scores("X", 2, 0, {"Z": z})
        assert est.sufficiency == pytest.approx(exact["sufficiency"], abs=0.05)
        assert est.necessity == pytest.approx(exact["necessity"], abs=0.05)


class TestProposition43Relation:
    """NESUF <= P(o,x|k) NEC + P(o',x'|k) SUF + 1 - P(x|k) - P(x'|k)."""

    def _check(self, estimator, hi, lo):
        freq = estimator.frequency_estimator
        nec = estimator.necessity({"X": hi}, {"X": lo})
        suf = estimator.sufficiency({"X": hi}, {"X": lo})
        nesuf = estimator.necessity_sufficiency({"X": hi}, {"X": lo})
        p_o_x = freq.probability({"__outcome__": 1, "X": hi})
        p_no_xp = freq.probability({"__outcome__": 0, "X": lo})
        p_x = freq.probability({"X": hi})
        p_xp = freq.probability({"X": lo})
        rhs = p_o_x * nec + p_no_xp * suf + 1 - p_x - p_xp
        return nesuf, rhs

    @pytest.mark.parametrize("hi,lo", CONTRASTS)
    def test_inequality_monotone(self, monotone_case, hi, lo):
        estimator, _ = monotone_case
        nesuf, rhs = self._check(estimator, hi, lo)
        assert nesuf <= rhs + 0.03

    def test_equality_for_binary_attribute(self, toy_scm):
        """For binary X the inequality becomes an equality."""
        eqs = [
            StructuralEquation("W", (), (0, 1), root_categorical([0.6, 0.4])),
            StructuralEquation(
                "V", ("W",), (0, 1), logistic_binary({"W": 1.5}, bias=-0.7)
            ),
        ]
        scm = StructuralCausalModel(eqs)
        predict = lambda t: (t.codes("V") + t.codes("W")) >= 1  # noqa: E731
        estimator, _truth = _make_setup(scm, predict)
        nec = estimator.necessity({"V": 1}, {"V": 0})
        suf = estimator.sufficiency({"V": 1}, {"V": 0})
        nesuf = estimator.necessity_sufficiency({"V": 1}, {"V": 0})
        freq = estimator.frequency_estimator
        rhs = (
            freq.probability({"__outcome__": 1, "V": 1}) * nec
            + freq.probability({"__outcome__": 0, "V": 0}) * suf
        )
        assert nesuf == pytest.approx(rhs, abs=0.03)


class TestProposition44ZeroScores:
    """Non-descendants of the outcome get zero scores."""

    def test_spurious_attribute_scores_zero(self):
        """W correlates with O via confounding but has no causal path."""
        eqs = [
            StructuralEquation("U", (), (0, 1), root_categorical([0.5, 0.5])),
            StructuralEquation(
                "W", ("U",), (0, 1), logistic_binary({"U": 2.5}, bias=-1.25)
            ),
            StructuralEquation(
                "X", ("U",), (0, 1), logistic_binary({"U": 2.5}, bias=-1.25)
            ),
        ]
        scm = StructuralCausalModel(eqs)
        predict = lambda t: t.codes("X") == 1  # noqa: E731  (ignores W)
        estimator, truth = _make_setup(scm, predict)
        # Ground truth: intervening on W cannot move the outcome.
        assert truth.necessity_sufficiency("W", 1, 0) == 0.0
        assert truth.sufficiency("W", 1, 0) == 0.0
        assert truth.necessity("W", 1, 0) == 0.0
        # Estimated NESUF with the correct diagram is ~0 even though W
        # and O are strongly correlated (U confounds them).
        est = estimator.necessity_sufficiency({"W": 1}, {"W": 0})
        assert est == pytest.approx(0.0, abs=0.04)
        # Without the diagram, the naive estimator is fooled — the causal
        # adjustment is what makes Prop 4.4 hold in estimation.
        naive = ScoreEstimator(
            estimator.table.drop(["__outcome__"]),
            estimator.table.codes("__outcome__").astype(bool),
            diagram=None,
        )
        assert naive.necessity_sufficiency({"W": 1}, {"W": 0}) > 0.15
