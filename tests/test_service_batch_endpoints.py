"""HTTP tests for the cohort batch endpoints.

``POST /v1/explain/local_batch`` and ``POST /v1/recourse/batch`` route
through the micro-batcher like every other request kind, cache under
tenant-scoped keys, and validate their cohort selectors.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.service import ExplainerSession
from repro.service.server import create_server


def tiny_model(features: Table) -> np.ndarray:
    return (features.codes("a") + features.codes("b")) >= 2


@pytest.fixture(scope="module")
def session():
    rng = np.random.default_rng(11)
    n = 160
    table = Table.from_dict(
        {
            "a": rng.integers(0, 3, n).tolist(),
            "b": rng.integers(0, 3, n).tolist(),
            "sex": rng.choice(["F", "M"], n).tolist(),
        },
        domains={"a": [0, 1, 2], "b": [0, 1, 2], "sex": ["F", "M"]},
    )
    lewis = Lewis(
        tiny_model,
        data=table,
        feature_names=["a", "b"],
        attributes=["a", "b", "sex"],
        infer_orderings=False,
    )
    session = ExplainerSession(
        lewis, default_actionable=["a", "b"], background=True
    )
    yield session
    session.close()


@pytest.fixture(scope="module")
def base_url(session):
    httpd = create_server(session, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address[:2]
    yield f"http://{host}:{port}"
    httpd.shutdown()
    httpd.server_close()


def post(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def post_error(url: str, payload) -> tuple[int, dict]:
    try:
        post(url, payload)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError("expected an HTTP error")


class TestLocalBatchEndpoint:
    def test_batch_matches_single_row_endpoint(self, base_url):
        indices = [0, 3, 5]
        status, batch = post(
            f"{base_url}/v1/explain/local_batch", {"indices": indices}
        )
        assert status == 200
        result = batch["result"]
        assert result["indices"] == indices
        assert len(result["explanations"]) == len(indices)
        for index, explanation in zip(indices, result["explanations"]):
            _status, single = post(
                f"{base_url}/v1/explain/local", {"index": index}
            )
            expected = single["result"]
            assert explanation["individual"] == expected["individual"]
            assert explanation["outcome_positive"] == expected["outcome_positive"]
            for got, want in zip(
                explanation["contributions"], expected["contributions"]
            ):
                assert got["attribute"] == want["attribute"]
                assert got["value"] == want["value"]
                assert got["positive"] == pytest.approx(
                    want["positive"], abs=1e-12
                )
                assert got["negative"] == pytest.approx(
                    want["negative"], abs=1e-12
                )
                assert got["negative_foil"] == want["negative_foil"]
                assert got["positive_foil"] == want["positive_foil"]

    def test_batch_is_cached_on_repeat(self, base_url):
        payload = {"indices": [1, 2]}
        post(f"{base_url}/v1/explain/local_batch", payload)
        status, second = post(f"{base_url}/v1/explain/local_batch", payload)
        assert status == 200
        assert second["cached"] is True

    def test_attributes_subset(self, base_url):
        status, body = post(
            f"{base_url}/v1/explain/local_batch",
            {"indices": [0], "attributes": ["a"]},
        )
        assert status == 200
        contributions = body["result"]["explanations"][0]["contributions"]
        assert [c["attribute"] for c in contributions] == ["a"]

    def test_missing_indices_400(self, base_url):
        code, body = post_error(f"{base_url}/v1/explain/local_batch", {})
        assert code == 400
        assert "indices" in body["error"]

    def test_empty_indices_400(self, base_url):
        code, _body = post_error(
            f"{base_url}/v1/explain/local_batch", {"indices": []}
        )
        assert code == 400

    def test_non_integer_indices_400(self, base_url):
        code, _body = post_error(
            f"{base_url}/v1/explain/local_batch", {"indices": ["x"]}
        )
        assert code == 400


class TestRecourseBatchEndpoint:
    def test_default_cohort_is_negative_rows(self, base_url, session):
        status, body = post(f"{base_url}/v1/recourse/batch", {"alpha": 0.6})
        assert status == 200
        result = body["result"]
        negatives = len(session.lewis.negative_indices())
        assert result["n"] == negatives
        assert result["feasible"] + result["infeasible"] == result["n"]
        assert len(result["recourses"]) == result["n"]

    def test_explicit_indices_and_schema(self, base_url):
        status, body = post(
            f"{base_url}/v1/recourse/batch",
            {"indices": [0, 1], "alpha": 0.6, "actionable": ["a", "b"]},
        )
        assert status == 200
        result = body["result"]
        assert result["indices"] == [0, 1]
        for entry in result["recourses"]:
            if entry is not None:
                assert {"actions", "total_cost", "is_empty"} <= set(entry)

    def test_batch_is_cached_on_repeat(self, base_url):
        payload = {"indices": [0, 1], "alpha": 0.6}
        post(f"{base_url}/v1/recourse/batch", payload)
        status, second = post(f"{base_url}/v1/recourse/batch", payload)
        assert status == 200
        assert second["cached"] is True

    def test_bad_alpha_400(self, base_url):
        code, _body = post_error(
            f"{base_url}/v1/recourse/batch", {"indices": [0], "alpha": "high"}
        )
        assert code == 400

    def test_empty_indices_400(self, base_url):
        code, _body = post_error(
            f"{base_url}/v1/recourse/batch", {"indices": []}
        )
        assert code == 400


class TestSessionStatsGainLocalModels:
    def test_stats_expose_local_model_cache(self, session):
        stats = session.stats()
        assert "local_models" in stats
        assert {"entries", "hits", "misses", "evictions"} <= set(
            stats["local_models"]
        )
