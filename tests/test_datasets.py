"""Unit tests for the dataset generators and the registry."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.data.registry import available_datasets
from repro.data.compas import compas_software_positive


class TestRegistry:
    def test_available_datasets(self):
        assert set(available_datasets()) == {
            "german",
            "adult",
            "compas",
            "drug",
            "german_syn",
            "wide",
        }

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("mnist")

    def test_row_count_override(self):
        bundle = load_dataset("german", n_rows=123, seed=0)
        assert len(bundle.table) == 123

    def test_deterministic_given_seed(self):
        a = load_dataset("german", n_rows=100, seed=5)
        b = load_dataset("german", n_rows=100, seed=5)
        assert a.table.codes("credit_risk").tolist() == b.table.codes(
            "credit_risk"
        ).tolist()

    def test_different_seeds_differ(self):
        a = load_dataset("german", n_rows=200, seed=1)
        b = load_dataset("german", n_rows=200, seed=2)
        assert a.table.codes("savings").tolist() != b.table.codes("savings").tolist()


@pytest.mark.parametrize(
    "name, n_rows", [("german", 300), ("adult", 500), ("compas", 400), ("drug", 400)]
)
class TestClassificationBundles:
    def test_schema_consistency(self, name, n_rows):
        bundle = load_dataset(name, n_rows=n_rows, seed=0)
        assert len(bundle.table) == n_rows
        for feature in bundle.feature_names:
            assert feature in bundle.table
        assert bundle.label in bundle.table
        assert bundle.positive_label in bundle.table.domain(bundle.label)

    def test_graph_covers_features(self, name, n_rows):
        bundle = load_dataset(name, n_rows=n_rows, seed=0)
        for feature in bundle.feature_names:
            assert feature in bundle.graph

    def test_label_not_in_graph(self, name, n_rows):
        bundle = load_dataset(name, n_rows=n_rows, seed=0)
        assert bundle.label not in bundle.graph.nodes

    def test_both_label_values_present(self, name, n_rows):
        bundle = load_dataset(name, n_rows=n_rows, seed=0)
        counts = bundle.table.column(bundle.label).value_counts()
        present = [v for v, c in counts.items() if c > 0]
        assert len(present) >= 2

    def test_scm_attached(self, name, n_rows):
        bundle = load_dataset(name, n_rows=n_rows, seed=0)
        assert bundle.scm is not None
        assert set(bundle.feature_names) <= set(bundle.scm.nodes)

    def test_actionable_subset_of_features(self, name, n_rows):
        bundle = load_dataset(name, n_rows=n_rows, seed=0)
        assert set(bundle.actionable) <= set(bundle.feature_names)

    def test_contexts_resolvable(self, name, n_rows):
        bundle = load_dataset(name, n_rows=n_rows, seed=0)
        for context in bundle.contexts.values():
            for attr, value in context.items():
                assert value in bundle.table.domain(attr)


class TestGermanSpecifics:
    def test_label_depends_on_credit_history(self):
        bundle = load_dataset("german", n_rows=5_000, seed=0)
        table = bundle.table
        good = table.filter(credit_hist="all paid duly").codes("credit_risk").mean()
        bad = table.filter(credit_hist="delay in past").codes("credit_risk").mean()
        assert good > bad + 0.1

    def test_age_drives_employment(self):
        bundle = load_dataset("german", n_rows=5_000, seed=0)
        young = bundle.table.filter(age="<25 yr").codes("employment").mean()
        old = bundle.table.filter(age=">50 yr").codes("employment").mean()
        assert old > young + 0.5

    def test_unordered_attributes_flagged(self):
        bundle = load_dataset("german", n_rows=100, seed=0)
        assert not bundle.table.column("purpose").ordered
        assert bundle.table.column("savings").ordered


class TestAdultSpecifics:
    def test_marital_effect_on_income(self):
        bundle = load_dataset("adult", n_rows=8_000, seed=0)
        married = bundle.table.filter(marital="married").codes("income").mean()
        single = bundle.table.filter(marital="never married").codes("income").mean()
        assert married > single + 0.1

    def test_male_bias_encoded(self):
        bundle = load_dataset("adult", n_rows=8_000, seed=0)
        male = bundle.table.filter(sex="Male").codes("income").mean()
        female = bundle.table.filter(sex="Female").codes("income").mean()
        assert male > female


class TestCompasSpecifics:
    def test_priors_raise_recidivism(self):
        bundle = load_dataset("compas", n_rows=5_000, seed=0)
        high = bundle.table.filter(priors_count="10+").codes("two_year_recid").mean()
        low = bundle.table.filter(priors_count="0").codes("two_year_recid").mean()
        assert high > low + 0.2

    def test_software_score_biased_by_race(self):
        bundle = load_dataset("compas", n_rows=5_000, seed=0)
        features = bundle.table.select(bundle.feature_names)
        positive = compas_software_positive(features)
        white = positive[np.asarray(features.mask(race="White"))].mean()
        black = positive[np.asarray(features.mask(race="Black"))].mean()
        assert white > black + 0.1

    def test_no_actionable_attributes(self):
        bundle = load_dataset("compas", n_rows=100, seed=0)
        assert bundle.actionable == []

    def test_score_column_present(self):
        bundle = load_dataset("compas", n_rows=100, seed=0)
        assert "compas_score" in bundle.table


class TestDrugSpecifics:
    def test_three_class_outcome(self):
        bundle = load_dataset("drug", n_rows=1_000, seed=0)
        assert len(bundle.table.domain(bundle.label)) == 3
        assert bundle.positive_label == "never"

    def test_education_lowers_usage(self):
        bundle = load_dataset("drug", n_rows=8_000, seed=0)
        high_edu = bundle.table.filter(edu="masters+")
        low_edu = bundle.table.filter(edu="left school")
        # Code 0 = never used; lower mean code = less usage.
        assert high_edu.codes("mushrooms").mean() < low_edu.codes("mushrooms").mean()


class TestGermanSyn:
    def test_regression_label_domain_is_numeric(self):
        bundle = load_dataset("german_syn", n_rows=500, seed=0)
        domain = bundle.table.domain(bundle.label)
        assert all(isinstance(v, float) for v in domain)
        assert min(domain) == 0.0 and max(domain) == 1.0

    def test_age_sex_only_indirect(self):
        bundle = load_dataset("german_syn", n_rows=100, seed=0)
        scm = bundle.scm
        label_parents = scm.equation("credit_score").parents
        # age appears as a parent only for the violation term (weight 0
        # by default); sex must not appear at all.
        assert "sex" not in label_parents

    def test_violation_parameter_changes_scores(self):
        clean = load_dataset("german_syn", n_rows=4_000, seed=0)
        violated = load_dataset("german_syn", n_rows=4_000, seed=0, violation=2.0)
        assert clean.table.codes("credit_score").tolist() != violated.table.codes(
            "credit_score"
        ).tolist()

    def test_score_monotone_in_saving_without_violation(self):
        bundle = load_dataset("german_syn", n_rows=10_000, seed=0)
        means = [
            bundle.table.filter(saving=v).codes("credit_score").mean()
            for v in bundle.table.domain("saving")
        ]
        assert all(b >= a for a, b in zip(means, means[1:]))


class TestWide:
    def test_variable_count(self):
        bundle = load_dataset("wide", n_rows=300, seed=0, n_variables=20)
        assert len(bundle.feature_names) == 20
        assert bundle.label == "outcome"

    def test_all_actionable(self):
        bundle = load_dataset("wide", n_rows=100, seed=0, n_variables=10)
        assert bundle.actionable == bundle.feature_names
