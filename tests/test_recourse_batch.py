"""Cohort recourse: custom-cost accounting, cache invalidation, audits.

Covers the satellite regressions of the cohort fast-path PR: reported
action costs must come from the solver's ``cost_fn`` (not a hardcoded
ordinal distance), cached solvers must be dropped when the underlying
table changes, and the bounded local-model cache must evict instead of
growing without limit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lewis import Lewis
from repro.core.recourse import RecourseSolver
from repro.core.scores import ScoreEstimator
from repro.data.table import Table


def make_population(seed: int = 0, n: int = 240) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_codes(
        {
            "skill": rng.integers(0, 3, n),
            "hours": rng.integers(0, 3, n),
            "region": rng.integers(0, 2, n),
        },
        domains={"skill": [0, 1, 2], "hours": [0, 1, 2], "region": [0, 1]},
    )


def score_model(features: Table) -> np.ndarray:
    return (features.codes("skill") + features.codes("hours")) >= 3


def make_lewis(seed: int = 0, n: int = 240) -> Lewis:
    return Lewis(
        score_model,
        data=make_population(seed, n),
        feature_names=["skill", "hours", "region"],
        infer_orderings=False,
    )


class TestCustomCostAccounting:
    def test_reported_costs_use_cost_fn(self):
        """Per-action ``cost`` and ``total_cost`` agree with the objective.

        Regression: ``_actions`` hardcoded ``abs(code - current)`` as the
        reported action cost regardless of the solver's ``cost_fn``, so a
        custom pricing produced an inconsistent recourse card.
        """
        lewis = make_lewis()

        def lopsided(attribute: str, current: int, new: int) -> float:
            return 5.0 if attribute == "skill" else 0.25 * abs(new - current)

        negative = lewis.negative_indices()
        checked = 0
        for index in negative[:25]:
            try:
                recourse = lewis.recourse(
                    int(index),
                    actionable=["skill", "hours"],
                    alpha=0.6,
                    cost_fn=lopsided,
                )
            except Exception:
                continue
            for action in recourse.actions:
                current = lewis.data.column(action.attribute).code_of(
                    action.current_value
                )
                new = lewis.data.column(action.attribute).code_of(
                    action.new_value
                )
                assert action.cost == pytest.approx(
                    lopsided(action.attribute, current, new), abs=1e-12
                )
            if recourse.actions:
                checked += 1
                assert recourse.total_cost == pytest.approx(
                    sum(a.cost for a in recourse.actions), abs=1e-9
                )
        assert checked > 0, "no feasible non-empty recourse exercised the check"

    def test_unit_cost_unchanged(self):
        """The default cost function still reports ordinal distances."""
        lewis = make_lewis()
        for index in lewis.negative_indices()[:20]:
            try:
                recourse = lewis.recourse(
                    int(index), actionable=["skill", "hours"], alpha=0.6
                )
            except Exception:
                continue
            for action in recourse.actions:
                current = lewis.data.column(action.attribute).code_of(
                    action.current_value
                )
                new = lewis.data.column(action.attribute).code_of(action.new_value)
                assert action.cost == float(abs(new - current))


class TestSolverInvalidation:
    def test_recourse_after_append_reflects_new_rows(self):
        """A data delta must drop the cached solver's stale logit model."""
        lewis = make_lewis(seed=1, n=200)
        index = int(lewis.negative_indices()[0])
        before = lewis.recourse(index, actionable=["skill", "hours"], alpha=0.6)
        cached = lewis._recourse_solvers[(("hours", "skill"), None)][1]

        # Append a skewed block of rows; the refit logit must see them.
        inserts = [
            {"skill": 2, "hours": 2, "region": 0} for _ in range(150)
        ] + [{"skill": 0, "hours": 0, "region": 1} for _ in range(150)]
        lewis.apply_delta(inserted_rows=inserts)

        after = lewis.recourse(index, actionable=["skill", "hours"], alpha=0.6)
        fresh_solver = RecourseSolver(lewis.estimator, ["skill", "hours"])
        fresh = fresh_solver.solve(lewis.data.row_codes(index), alpha=0.6)
        refit = lewis._recourse_solvers[(("hours", "skill"), None)][1]
        assert refit is not cached
        assert after.as_dict() == fresh.as_dict()
        assert after.estimated_probability == pytest.approx(
            fresh.estimated_probability, abs=1e-12
        )
        # And the pre-update answer was genuinely computed on old data.
        assert before.threshold != pytest.approx(0.0)

    def test_version_mismatch_detected_without_lewis_apply_delta(self):
        """Even an estimator-level delta invalidates at next lookup."""
        lewis = make_lewis(seed=2, n=160)
        index = int(lewis.negative_indices()[0])
        lewis.recourse(index, actionable=["skill", "hours"], alpha=0.6)
        first = lewis._recourse_solvers[(("hours", "skill"), None)]

        extra = make_population(seed=9, n=40)
        positive = score_model(extra)
        lewis.estimator.apply_delta(extra, positive)

        lewis.recourse(index, actionable=["skill", "hours"], alpha=0.6)
        second = lewis._recourse_solvers[(("hours", "skill"), None)]
        assert second[0] > first[0]
        assert second[1] is not first[1]


class TestSolverCacheBound:
    def test_per_call_lambdas_do_not_grow_cache_unboundedly(self):
        """Identity-keyed cost_fn entries are LRU-evicted, not leaked."""
        lewis = make_lewis(seed=7, n=160)
        index = int(lewis.negative_indices()[0])
        for _ in range(20):
            lewis.recourse(
                index,
                actionable=["skill", "hours"],
                alpha=0.6,
                cost_fn=lambda a, c, n: float(abs(n - c)),
            )
        assert len(lewis._recourse_solvers) <= 16

    def test_memo_respects_refinement_budget(self):
        """A larger max_refinements must not be served a smaller budget's answer."""
        estimator = ScoreEstimator(
            make_population(seed=8, n=200), score_model(make_population(seed=8, n=200))
        )
        solver = RecourseSolver(estimator, actionable=["skill", "hours"])
        rows = [estimator._features.row_codes(i) for i in range(20)]
        solver.solve_batch(rows, alpha=0.6, max_refinements=1, on_infeasible="none")
        small = solver.solution_memo_stats()["solved_signatures"]
        solver.solve_batch(rows, alpha=0.6, max_refinements=4, on_infeasible="none")
        # Distinct budgets occupy distinct memo keys: the second call
        # re-solved instead of re-serving the budget-1 entries.
        assert solver.solution_memo_stats()["solved_signatures"] == 2 * small


class TestRecourseAudit:
    def test_audit_counts_are_consistent(self):
        lewis = make_lewis(seed=3)
        audit = lewis.recourse_audit(["skill", "hours"], alpha=0.6)
        assert audit["n"] == len(lewis.negative_indices())
        assert audit["feasible"] + audit["infeasible"] == audit["n"]
        assert len(audit["recourses"]) == audit["n"]
        assert audit["already_satisfied"] <= audit["feasible"]
        for recourse in audit["recourses"]:
            if recourse is not None and recourse.actions:
                assert audit["mean_cost"] > 0.0
                break

    def test_audit_on_explicit_indices(self):
        lewis = make_lewis(seed=4)
        chosen = [int(i) for i in lewis.negative_indices()[:5]]
        audit = lewis.recourse_audit(["skill", "hours"], alpha=0.6, indices=chosen)
        assert audit["indices"] == chosen
        assert audit["n"] == 5


class TestLocalModelCacheBound:
    def test_eviction_beyond_budget(self):
        table = make_population(seed=5, n=120)
        positive = score_model(table)
        estimator = ScoreEstimator(table, positive, max_local_models=2)
        # Three distinct feature tuples: the first must be evicted.
        for attribute in ("skill", "hours", "region"):
            context = estimator.local_context(
                attribute, table.row_codes(0)
            )
            estimator.local_probability(attribute, 0, context)
        stats = estimator.local_model_stats()
        assert stats["entries"] == 2
        assert stats["evictions"] == 1
        assert stats["misses"] == 3

    def test_evicted_model_refits_identically(self):
        table = make_population(seed=6, n=150)
        positive = score_model(table)
        bounded = ScoreEstimator(table, positive, max_local_models=1)
        unbounded = ScoreEstimator(table, positive, max_local_models=None)
        row = table.row_codes(3)
        for attribute in ("skill", "hours", "skill", "region", "skill"):
            context_b = bounded.local_context(attribute, row)
            context_u = unbounded.local_context(attribute, row)
            assert bounded.local_probability(
                attribute, 1, context_b
            ) == pytest.approx(
                unbounded.local_probability(attribute, 1, context_u), abs=1e-12
            )
        assert bounded.local_model_stats()["evictions"] >= 2
