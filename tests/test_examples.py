"""Smoke tests for the example scripts.

Each example must import cleanly (catching API drift), and the cheapest
one runs end to end to guard the documented quickstart path.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[1] / "examples"

EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    spec = importlib.util.spec_from_file_location(
        f"examples_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        assert {
            "quickstart",
            "loan_recourse_german",
            "fairness_audit_compas",
            "drug_multiclass",
            "synthetic_ground_truth",
            "discover_and_explain",
        } <= set(EXAMPLES)

    @pytest.mark.parametrize("name", EXAMPLES)
    def test_example_imports_and_has_main(self, name):
        module = _load(name)
        assert callable(getattr(module, "main", None)), f"{name} lacks main()"

    def test_quickstart_runs_end_to_end(self, capsys, monkeypatch):
        import repro

        module = _load("quickstart")
        # Shrink the dataset so the smoke run stays fast.
        original = repro.load_dataset
        monkeypatch.setattr(
            module,
            "load_dataset",
            lambda name, n_rows=1000, seed=0: original(name, n_rows=400, seed=seed),
        )
        module.main()
        out = capsys.readouterr().out
        assert "Global explanation" in out
        assert "Local explanation" in out
        assert "recourse" in out.lower()
