"""Jittered exponential backoff: ladder, jitter bounds, deadlines."""

from __future__ import annotations

import random

import pytest

from repro.utils.backoff import Backoff


class TestLadder:
    def test_plain_exponential_ladder(self):
        backoff = Backoff(initial=0.5, factor=2.0, max_delay=10.0)
        assert [backoff.next_delay() for _ in range(6)] == [
            0.5, 1.0, 2.0, 4.0, 8.0, 10.0
        ]
        assert backoff.attempts == 6

    def test_reset_restarts_the_ladder(self):
        backoff = Backoff(initial=0.5)
        backoff.next_delay()
        backoff.next_delay()
        backoff.reset()
        assert backoff.attempts == 0
        assert backoff.next_delay() == 0.5

    def test_factor_one_is_constant(self):
        backoff = Backoff(initial=0.3, factor=1.0)
        assert [backoff.next_delay() for _ in range(3)] == [0.3, 0.3, 0.3]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Backoff(initial=0.0)
        with pytest.raises(ValueError):
            Backoff(initial=1.0, factor=0.5)
        with pytest.raises(ValueError):
            Backoff(initial=1.0, jitter=1.5)


class TestJitter:
    def test_jitter_only_shrinks_within_fraction(self):
        backoff = Backoff(
            initial=1.0, factor=1.0, jitter=0.5, rng=random.Random(7)
        )
        for _ in range(50):
            delay = backoff.next_delay()
            assert 0.5 <= delay <= 1.0

    def test_jitter_is_deterministic_given_rng(self):
        first = Backoff(initial=1.0, jitter=0.3, rng=random.Random(3))
        second = Backoff(initial=1.0, jitter=0.3, rng=random.Random(3))
        assert [first.next_delay() for _ in range(5)] == [
            second.next_delay() for _ in range(5)
        ]


class TestDeadline:
    def test_delay_clamped_to_remaining_deadline(self):
        clock = iter([0.0, 0.0, 3.5]).__next__
        backoff = Backoff(
            initial=4.0, factor=2.0, deadline_s=4.0, clock=clock
        )
        assert backoff.next_delay() == 4.0  # full budget remains
        assert backoff.next_delay() == 0.5  # only half a second left

    def test_expired_after_deadline(self):
        clock = iter([0.0, 5.0, 5.0]).__next__
        backoff = Backoff(initial=0.5, deadline_s=4.0, clock=clock)
        assert backoff.expired()
        assert backoff.remaining_s() == 0.0

    def test_no_deadline_never_expires(self):
        backoff = Backoff(initial=0.5)
        assert not backoff.expired()
        assert backoff.remaining_s() is None
