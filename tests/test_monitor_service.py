"""Monitor endpoints over HTTP: register, watch long-poll, recovery, CLI."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import fit_table_model
from repro.cli import main
from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.service.server import create_server
from repro.store import ArtifactStore, Registry, create_tenant

NAMES = ("a", "b", "c")


def make_lewis(n: int = 300) -> Lewis:
    rng = np.random.default_rng(11)
    rows = {
        "a": rng.integers(0, 3, n).tolist(),
        "b": rng.integers(0, 4, n).tolist(),
        "c": rng.integers(0, 2, n).tolist(),
    }
    rows["y"] = [
        int(a + b + c >= 3) for a, b, c in zip(rows["a"], rows["b"], rows["c"])
    ]
    table = Table.from_dict(
        rows,
        domains={"a": [0, 1, 2], "b": [0, 1, 2, 3], "c": [0, 1], "y": [0, 1]},
    )
    model = fit_table_model("logistic", table, list(NAMES), "y", seed=0)
    return Lewis(
        model,
        data=table.select(list(NAMES)),
        attributes=list(NAMES),
        positive_outcome=1,
        infer_orderings=False,
    )


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    store = ArtifactStore(tmp_path_factory.mktemp("store"))
    create_tenant(store, "acme", make_lewis()).close()
    registry = Registry(store, background=True)
    server = create_server(registry=registry, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, registry
    server.shutdown()
    server.server_close()
    server.monitors.close()
    registry.close(checkpoint=False)


@pytest.fixture(scope="module")
def base_url(served):
    host, port = served[0].server_address[:2]
    return f"http://{host}:{port}"


def http(url: str, method: str = "GET", payload: dict | None = None):
    data = json.dumps(payload).encode() if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def http_error(url: str, method: str = "GET", payload: dict | None = None):
    try:
        http(url, method, payload)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError("expected an HTTP error")


class TestMonitorEndpoints:
    def test_full_lifecycle_with_watch(self, base_url):
        tenant = f"{base_url}/v1/acme"
        _, created = http(
            f"{tenant}/monitors",
            "POST",
            {
                "kind": "score",
                "params": {"attribute": "a", "value": 2, "baseline": 0},
                "threshold": 0.05,
            },
        )
        monitor_id = created["id"]
        assert set(created["baseline"]) >= {"necessity", "sufficiency"}

        _, listing = http(f"{tenant}/monitors")
        assert monitor_id in [m["id"] for m in listing["monitors"]]

        # long-poll from a thread, then inject a shift through /update
        result: dict = {}
        watcher = threading.Thread(
            target=lambda: result.update(
                http(f"{tenant}/watch?cursor=0&timeout=15")[1]
            )
        )
        watcher.start()
        time.sleep(0.1)
        _, update = http(
            f"{tenant}/update",
            "POST",
            {"insert": [{"a": 2, "b": 0, "c": 0}] * 250},
        )
        watcher.join(timeout=20)
        assert not watcher.is_alive()
        assert result["alerts"], result
        alert = result["alerts"][0]
        assert alert["monitor_id"] == monitor_id
        assert alert["wal_seq"] == update["result"]["wal_seq"]
        assert result["cursor"] == alert["seq"]

        _, state = http(f"{tenant}/monitors/{monitor_id}")
        assert state["alerts"] >= 1
        assert state["batches_seen"] >= 1

        # caught-up cursor times out empty
        _, idle = http(f"{tenant}/watch?cursor={result['cursor']}&timeout=0.2")
        assert idle["timed_out"] and idle["alerts"] == []

        # stats carries the monitor block for attached tenants
        _, stats = http(f"{tenant}/stats")
        assert stats["monitors"]["monitors"] >= 1

        # evict the session: monitors must come back from the journal
        http(f"{base_url}/v1/registry/acme/evict", "POST", {})
        _, after = http(f"{tenant}/monitors")
        assert monitor_id in [m["id"] for m in after["monitors"]]
        assert after["alerts_total"] >= 1

        _, removed = http(f"{tenant}/monitors/{monitor_id}", "DELETE")
        assert removed["removed"]
        _, final = http(f"{tenant}/monitors")
        assert monitor_id not in [m["id"] for m in final["monitors"]]

    def test_error_statuses(self, base_url):
        tenant = f"{base_url}/v1/acme"
        assert http_error(f"{tenant}/monitors/m999")[0] == 404
        assert http_error(f"{tenant}/monitors", "POST", {"kind": "nope"})[0] == 400
        assert http_error(f"{tenant}/watch?timeout=bogus")[0] == 400
        assert http_error(f"{base_url}/v1/ghost/monitors")[0] == 404

    def test_cli_against_live_server(self, base_url, capsys):
        args = ["--url", base_url, "--tenant", "acme"]
        assert main(
            ["monitor", "add", *args, "--kind", "fairness",
             "--attribute", "c", "--threshold", "0.1"]
        ) == 0
        added = capsys.readouterr().out
        monitor_id = added.split()[1]  # "registered <id> (...)"

        assert main(["monitor", "ls", *args]) == 0
        assert monitor_id in capsys.readouterr().out

        assert main(["monitor", "watch", *args, "--timeout", "0.2"]) == 0

        assert main(["monitor", "rm", *args, monitor_id]) == 0
        assert main(["monitor", "rm", *args, monitor_id]) == 1  # already gone
