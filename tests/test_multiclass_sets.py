"""Tests for the multi-class favourable-set extension and set scoring."""

import numpy as np
import pytest

from repro import Lewis, fit_table_model, load_dataset, train_test_split


@pytest.fixture(scope="module")
def drug_setup():
    bundle = load_dataset("drug", n_rows=900, seed=0)
    train, test = train_test_split(bundle.table, seed=0)
    model = fit_table_model(
        "random_forest", train, bundle.feature_names, bundle.label,
        seed=0, n_estimators=10,
    )
    return bundle, model, test


class TestFavourableSets:
    def test_single_label_partition(self, drug_setup):
        bundle, model, test = drug_setup
        lew = Lewis(model, data=test, graph=bundle.graph, positive_outcome="never")
        preds = model.predict_labels(test)
        assert lew.positive_rate == pytest.approx(
            np.mean([p == "never" for p in preds])
        )

    def test_set_partition_widens_positive(self, drug_setup):
        """O>= = {never, decade ago}: the partition of Section 4.1."""
        bundle, model, test = drug_setup
        narrow = Lewis(model, data=test, graph=bundle.graph, positive_outcome="never")
        wide = Lewis(
            model,
            data=test,
            graph=bundle.graph,
            positive_outcome={"never", "decade ago"},
        )
        assert wide.positive_rate >= narrow.positive_rate
        preds = model.predict_labels(test)
        assert wide.positive_rate == pytest.approx(
            np.mean([p in ("never", "decade ago") for p in preds])
        )

    def test_set_partition_scores_well_defined(self, drug_setup):
        bundle, model, test = drug_setup
        lew = Lewis(
            model,
            data=test,
            graph=bundle.graph,
            positive_outcome={"never", "decade ago"},
        )
        exp = lew.explain_global(attributes=["age", "sensation"])
        for s in exp.attribute_scores:
            assert 0.0 <= s.necessity_sufficiency <= 1.0

    def test_callable_model_with_set(self, drug_setup):
        bundle, _model, test = drug_setup
        features = test.select(bundle.feature_names)

        def predict(t):
            # Pretend outcome labels: usage class by sensation code.
            codes = t.codes("sensation")
            labels = np.array(["never", "decade ago", "last decade"])
            return labels[codes.clip(0, 2)]

        lew = Lewis(
            predict,
            data=features,
            feature_names=bundle.feature_names,
            positive_outcome={"never", "decade ago"},
            infer_orderings=False,
        )
        expected = np.isin(predict(features), ["never", "decade ago"])
        assert lew.positive_rate == pytest.approx(expected.mean())


class TestScoreSet:
    def test_joint_contrast_at_least_single(self, german_lewis):
        joint = german_lewis.score_set(
            {"savings": ">1000 DM", "status": ">200 DM"},
            {"savings": "<100 DM", "status": "<0 DM"},
        )
        single = german_lewis.score("savings", ">1000 DM", "<100 DM")
        # Jointly flipping two favourable attributes is at least as
        # sufficient as flipping one (monotone algorithm, same baseline
        # population up to conditioning).
        assert joint.sufficiency >= single.sufficiency - 0.15

    def test_joint_contrast_in_unit_interval(self, german_lewis):
        triple = german_lewis.score_set(
            {"savings": ">1000 DM", "credit_hist": "all paid duly"},
            {"savings": "<100 DM", "credit_hist": "delay in past"},
        )
        for value in triple.as_dict().values():
            assert 0.0 <= value <= 1.0

    def test_mismatched_attribute_sets_rejected(self, german_lewis):
        with pytest.raises(ValueError):
            german_lewis.score_set(
                {"savings": ">1000 DM"}, {"status": "<0 DM"}
            )
