"""Service-layer failure containment: drain, shed, deadlines, isolation.

The HTTP front-end's side of the chaos contract: draining replicas
refuse new work but stay observable, overload becomes 429 + Retry-After
instead of unbounded queueing, expired deadlines become 504, anytime
degradation is labeled and never cached, and one failing monitor never
starves its neighbours.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

import repro.faults as faults
from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.monitor.monitors import MonitorSet
from repro.service import ExplainerSession
from repro.service.server import create_server
from repro.service.updates import TableDelta
from repro.utils.exceptions import OverloadedError


def tiny_model(features: Table) -> np.ndarray:
    return (features.codes("a") + features.codes("b")) >= 2


def make_lewis(seed: int = 7, n: int = 200) -> Lewis:
    rng = np.random.default_rng(seed)
    table = Table.from_dict(
        {
            "a": rng.integers(0, 3, n).tolist(),
            "b": rng.integers(0, 3, n).tolist(),
            "sex": rng.choice(["F", "M"], n).tolist(),
        },
        domains={"a": [0, 1, 2], "b": [0, 1, 2], "sex": ["F", "M"]},
    )
    return Lewis(
        tiny_model,
        data=table,
        feature_names=["a", "b"],
        attributes=["a", "b", "sex"],
        infer_orderings=False,
    )


@pytest.fixture(scope="module")
def server():
    session = ExplainerSession(
        make_lewis(), default_actionable=["a", "b"], background=True
    )
    httpd = create_server(session, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    session.close()


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


@pytest.fixture()
def session():
    session = ExplainerSession(
        make_lewis(), default_actionable=["a", "b"], background=True
    )
    yield session
    session.close()


def get(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, json.loads(response.read()), response.headers


def post(url: str, payload: dict, headers: dict | None = None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read()), response.headers


def http_error(fn, *args, **kwargs) -> tuple[int, dict, dict]:
    try:
        fn(*args, **kwargs)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), exc.headers
    raise AssertionError("expected an HTTP error")


class TestHealthEndpoints:
    def test_healthz_is_pure_liveness(self, base_url):
        status, body, _ = get(f"{base_url}/healthz")
        assert status == 200
        assert body == {"status": "alive", "draining": False}

    def test_readyz_reports_per_subsystem_checks(self, base_url):
        status, body, _ = get(f"{base_url}/readyz")
        assert status == 200
        assert body["status"] == "ready"
        checks = body["checks"]
        assert checks["accepting"] == {"ok": True, "draining": False}
        assert checks["queue"]["ok"] and checks["queue"]["max_queue"] > 0
        assert checks["solver_pool"]["ok"] is True
        assert {"pool_failures", "pool_fallbacks"} <= set(
            checks["solver_pool"]
        )

    def test_versioned_paths_work_too(self, base_url):
        assert get(f"{base_url}/v1/healthz")[0] == 200
        assert get(f"{base_url}/v1/readyz")[0] == 200


class TestDraining:
    def test_draining_sheds_work_but_stays_observable(self, base_url, server):
        server.draining = True
        try:
            # Liveness keeps answering 200: the supervisor must not kill
            # a replica that is still draining in-flight requests.
            status, body, _ = get(f"{base_url}/healthz")
            assert status == 200 and body["draining"] is True
            # Readiness flips so the balancer stops routing here.
            status, body, headers = http_error(get, f"{base_url}/readyz")
            assert status == 503
            assert headers.get("Retry-After") == "1"
            assert body["status"] == "unavailable"
            assert body["checks"]["accepting"]["ok"] is False
            # Metrics stay scrapeable through the drain.
            req = urllib.request.Request(f"{base_url}/metrics")
            with urllib.request.urlopen(req, timeout=10) as response:
                assert response.status == 200
            # New work bounces with a retry hint — GET and POST alike.
            status, body, headers = http_error(get, f"{base_url}/v1/health")
            assert status == 503 and headers.get("Retry-After") == "1"
            assert "draining" in body["error"]
            status, _body, headers = http_error(
                post, f"{base_url}/v1/recourse", {"index": 0}
            )
            assert status == 503 and headers.get("Retry-After") == "1"
        finally:
            server.draining = False
        # Back to normal once the flag clears.
        assert get(f"{base_url}/v1/health")[0] == 200


class TestLoadShedding:
    def test_overload_maps_to_429_with_retry_after(
        self, base_url, server, monkeypatch
    ):
        def shed(request):
            raise OverloadedError(
                "request queue full (1 pending); retry later",
                retry_after_s=3.2,
            )

        monkeypatch.setattr(server.session, "handle", shed)
        status, body, headers = http_error(
            post, f"{base_url}/v1/recourse", {"index": 0}
        )
        assert status == 429
        assert headers.get("Retry-After") == "3"
        assert "overloaded" in body["error"]

    def test_queue_bound_is_wired_to_the_scheduler(self, server):
        scheduler = server.session.stats()["scheduler"]
        assert scheduler["max_queue"] > 0
        assert scheduler["shed"] == 0


class TestDeadlines:
    def test_expired_deadline_maps_to_504(self, base_url, server):
        index = int(server.session.lewis.negative_indices()[0])
        status, body, _ = http_error(
            post,
            f"{base_url}/v1/recourse",
            {"index": index, "alpha": 0.55},
            headers={"X-Repro-Deadline-Ms": "0.01"},
        )
        assert status == 504
        assert "deadline" in body["error"]

    def test_malformed_deadline_header_is_a_client_error(self, base_url):
        status, body, _ = http_error(
            post,
            f"{base_url}/v1/health",
            {},
            headers={"X-Repro-Deadline-Ms": "soon"},
        )
        assert status == 400
        assert "X-Repro-Deadline-Ms" in body["error"]

    def test_tight_deadline_degrades_to_labeled_anytime(
        self, base_url, server, monkeypatch
    ):
        # A 30s budget under a (forced) 600s anytime floor: the session
        # swaps the cohort solve exact → anytime and must say so in the
        # envelope. (Single-index recourse never degrades — only the
        # expensive batch path sits on the ladder.)
        monkeypatch.setenv("REPRO_ANYTIME_MS", "600000")
        indices = [int(i) for i in server.session.lewis.negative_indices()[:4]]
        payload = {"indices": indices, "alpha": 0.6}
        status, body, _ = post(
            f"{base_url}/v1/recourse/batch",
            payload,
            headers={"X-Repro-Deadline-Ms": "30000"},
        )
        assert status == 200
        assert body["degraded"] is True
        assert body["degraded_reason"] == "deadline"
        assert body["result"]["degraded"] is True
        assert body["cached"] is False

        # The degraded answer was never cached: the same request without
        # a deadline recomputes the exact answer...
        status, body, _ = post(f"{base_url}/v1/recourse/batch", payload)
        assert status == 200
        assert "degraded" not in body
        assert body["cached"] is False
        # ...and *that* one does land in the cache.
        status, body, _ = post(f"{base_url}/v1/recourse/batch", payload)
        assert body["cached"] is True and "degraded" not in body


def add_score_monitor(monitors: MonitorSet, attribute: str = "a") -> str:
    return monitors.add(
        {
            "kind": "score",
            "params": {"attribute": attribute, "value": 2, "baseline": 0},
            "threshold": 0.05,
        }
    )["id"]


def push_update(session: ExplainerSession) -> None:
    session.update(
        TableDelta(insert=({"a": 2, "b": 2, "sex": "F"},), delete=())
    )


class TestMonitorIsolation:
    def test_one_bad_monitor_never_starves_the_rest(self, session):
        monitors = MonitorSet(session)
        m1 = add_score_monitor(monitors, "a")
        m2 = add_score_monitor(monitors, "b")
        push_update(session)

        # every=2 fires on the second evaluation: m1 (first in
        # registration order) refreshes, m2's compute blows up.
        with faults.plan({"monitor.refresh": {"every": 2}}):
            out = monitors.refresh()
        assert out["refreshed"] == 1
        assert out["failed"] == 1
        assert monitors.stats()["refresh_failures"] == 1

        # The healthy monitor advanced; the failed one holds its cursor
        # so the next refresh retries the same range.
        assert monitors.get(m1)["cursor"] > monitors.get(m2)["cursor"]

        # The failure is a first-class, typed alert on the watch stream.
        watched = monitors.watch(cursor=0, timeout=0)
        failures = [
            a
            for a in watched["alerts"]
            if a["detector"] == "refresh_failure"
        ]
        assert len(failures) == 1
        assert failures[0]["monitor_id"] == m2
        assert failures[0]["direction"] == "error"

        # A clean refresh heals: only the failed monitor has catching
        # up to do, and both cursors converge.
        out = monitors.refresh()
        assert out["refreshed"] == 1 and out["failed"] == 0
        assert monitors.get(m1)["cursor"] == monitors.get(m2)["cursor"]

    @pytest.mark.parametrize("seed", [3, 11, 42])
    def test_seeded_failure_matrix_accounting(self, session, seed):
        """Probabilistic refresh faults: counters and alerts reconcile."""
        monitors = MonitorSet(session)
        monitor_id = add_score_monitor(monitors, "a")
        refreshed = failed = 0
        with faults.plan(
            {"monitor.refresh": {"probability": 0.5}}, seed=seed
        ) as plan:
            for _ in range(6):
                push_update(session)
                out = monitors.refresh()
                refreshed += out["refreshed"]
                failed += out["failed"]
            counts = plan.counts()["monitor.refresh"]
        assert refreshed + failed == 6
        assert counts == {"evaluations": 6, "fired": failed}
        stats = monitors.stats()
        assert stats["refresh_failures"] == failed
        alerts = monitors.watch(cursor=0, timeout=0)["alerts"]
        assert (
            sum(a["detector"] == "refresh_failure" for a in alerts) == failed
        )
        # After the plan is gone one refresh catches all the way up.
        out = monitors.refresh()
        assert out["failed"] == 0
        assert monitors.get(monitor_id)["cursor"] == session.table_version
