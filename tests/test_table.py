"""Unit tests for the Table / Column container."""

import numpy as np
import pytest

from repro.data.table import Column, Table, bin_numeric
from repro.utils.exceptions import DomainError


class TestColumnConstruction:
    def test_from_values_infers_sorted_domain(self):
        col = Column.from_values("x", [3, 1, 2, 1])
        assert col.categories == (1, 2, 3)
        assert col.codes.tolist() == [2, 0, 1, 0]

    def test_from_values_with_explicit_domain(self):
        col = Column.from_values("x", ["b", "a"], categories=["a", "b", "c"])
        assert col.categories == ("a", "b", "c")
        assert col.codes.tolist() == [1, 0]

    def test_from_values_rejects_value_outside_domain(self):
        with pytest.raises(DomainError):
            Column.from_values("x", ["z"], categories=["a", "b"])

    def test_from_values_unsortable_values_keep_first_seen_order(self):
        col = Column.from_values("x", [None, "a", None])
        assert col.categories == (None, "a")

    def test_from_codes_roundtrip(self):
        col = Column.from_codes("x", np.array([0, 2, 1]), ["lo", "mid", "hi"])
        assert col.decode() == ["lo", "hi", "mid"]

    def test_codes_out_of_range_rejected(self):
        with pytest.raises(DomainError):
            Column.from_codes("x", np.array([0, 5]), ["a", "b"])

    def test_negative_codes_rejected(self):
        with pytest.raises(DomainError):
            Column.from_codes("x", np.array([-1]), ["a", "b"])

    def test_two_dimensional_codes_rejected(self):
        with pytest.raises(ValueError):
            Column("x", np.zeros((2, 2), dtype=int), ("a",))


class TestColumnOperations:
    def test_len_and_cardinality(self):
        col = Column.from_values("x", [1, 1, 2], categories=[1, 2, 3])
        assert len(col) == 3
        assert col.cardinality == 3

    def test_code_of_known_value(self):
        col = Column.from_values("x", ["a"], categories=["a", "b"])
        assert col.code_of("b") == 1

    def test_code_of_unknown_value_raises(self):
        col = Column.from_values("x", ["a"], categories=["a", "b"])
        with pytest.raises(DomainError):
            col.code_of("zzz")

    def test_value_counts_includes_zero_categories(self):
        col = Column.from_values("x", ["a", "a"], categories=["a", "b"])
        assert col.value_counts() == {"a": 2, "b": 0}

    def test_take_subsets_rows(self):
        col = Column.from_values("x", [10, 20, 30])
        taken = col.take(np.array([2, 0]))
        assert taken.decode() == [30, 10]

    def test_replaced_keeps_domain(self):
        col = Column.from_values("x", [10, 20, 30])
        replaced = col.replaced(np.array([0, 0, 0]))
        assert replaced.decode() == [10, 10, 10]
        assert replaced.categories == col.categories

    def test_renamed(self):
        col = Column.from_values("x", [1]).renamed("y")
        assert col.name == "y"

    def test_with_order_preserves_decoded_values(self):
        col = Column.from_values("x", ["a", "b", "c"], ordered=False)
        reordered = col.with_order(["c", "a", "b"])
        assert reordered.decode() == ["a", "b", "c"]
        assert reordered.categories == ("c", "a", "b")
        assert reordered.ordered

    def test_with_order_requires_permutation(self):
        col = Column.from_values("x", ["a", "b"])
        with pytest.raises(DomainError):
            col.with_order(["a", "z"])


class TestBinNumeric:
    def test_quantile_binning_covers_all_rows(self):
        values = np.arange(100, dtype=float)
        col = bin_numeric("v", values, bins=4)
        assert len(col) == 100
        assert col.cardinality == 4
        counts = list(col.value_counts().values())
        assert sum(counts) == 100

    def test_explicit_edges_and_labels(self):
        col = bin_numeric("v", np.array([1.0, 5.0, 9.0]), edges=[4.0], labels=["lo", "hi"])
        assert col.decode() == ["lo", "hi", "hi"]

    def test_binning_is_monotone_in_value(self):
        values = np.array([0.1, 0.9, 0.5, 0.3])
        col = bin_numeric("v", values, edges=[0.25, 0.6])
        order = np.argsort(values)
        assert (np.diff(col.codes[order]) >= 0).all()


class TestTableBasics:
    def test_from_dict_and_len(self, small_table):
        assert len(small_table) == 8
        assert small_table.n_columns == 3
        assert small_table.names == ["color", "size", "label"]

    def test_duplicate_column_names_rejected(self):
        c = Column.from_values("x", [1])
        with pytest.raises(ValueError):
            Table([c, c])

    def test_length_mismatch_rejected(self):
        a = Column.from_values("a", [1, 2])
        b = Column.from_values("b", [1])
        with pytest.raises(ValueError):
            Table([a, b])

    def test_column_lookup_and_getitem(self, small_table):
        assert small_table.column("size") is small_table["size"]

    def test_unknown_column_raises_with_available(self, small_table):
        with pytest.raises(KeyError, match="available"):
            small_table.column("nope")

    def test_contains(self, small_table):
        assert "color" in small_table
        assert "nope" not in small_table

    def test_row_decoding(self, small_table):
        assert small_table.row(0) == {"color": "red", "size": 0, "label": "no"}

    def test_row_codes(self, small_table):
        assert small_table.row_codes(1) == {"color": 2, "size": 1, "label": 1}

    def test_domain(self, small_table):
        assert small_table.domain("label") == ("no", "yes")

    def test_unordered_flag_respected(self, small_table):
        assert not small_table.column("color").ordered
        assert small_table.column("size").ordered


class TestTableTransforms:
    def test_codes_matrix_shape_and_order(self, small_table):
        m = small_table.codes_matrix(["size", "label"])
        assert m.shape == (8, 2)
        assert m[0].tolist() == [0, 0]

    def test_codes_matrix_empty_names(self, small_table):
        assert small_table.codes_matrix([]).shape == (8, 0)

    def test_take(self, small_table):
        sub = small_table.take(np.array([0, 7]))
        assert len(sub) == 2
        assert sub.row(1)["color"] == "blue"

    def test_mask_and_filter(self, small_table):
        mask = small_table.mask(color="red")
        assert mask.sum() == 3
        filtered = small_table.filter(color="red", label="yes")
        assert len(filtered) == 2

    def test_select_reorders(self, small_table):
        sel = small_table.select(["label", "color"])
        assert sel.names == ["label", "color"]

    def test_drop(self, small_table):
        assert small_table.drop(["label"]).names == ["color", "size"]

    def test_with_column_replaces_by_name(self, small_table):
        new = Column.from_codes("size", np.zeros(8, dtype=int), [0, 1, 2])
        updated = small_table.with_column(new)
        assert set(updated.codes("size")) == {0}
        assert updated.names == small_table.names

    def test_concat_rows(self, small_table):
        doubled = small_table.concat_rows(small_table)
        assert len(doubled) == 16
        assert doubled.row(8) == small_table.row(0)

    def test_concat_rows_schema_mismatch(self, small_table):
        with pytest.raises(ValueError):
            small_table.concat_rows(small_table.drop(["label"]))

    def test_concat_rows_domain_mismatch(self, small_table):
        other = Table.from_dict(
            {
                "color": ["red"] * 2,
                "size": [0, 1],
                "label": ["maybe", "maybe"],
            },
            domains={"color": ["red", "green", "blue"], "size": [0, 1, 2], "label": ["maybe"]},
        )
        with pytest.raises(DomainError):
            small_table.concat_rows(other)

    def test_sample_without_replacement(self, small_table, rng):
        sampled = small_table.sample(4, rng)
        assert len(sampled) == 4

    def test_map_column(self, small_table):
        mapped = small_table.map_column("label", lambda v: v.upper())
        assert mapped.domain("label") == ("NO", "YES")
        assert mapped.row(0)["label"] == "NO"

    def test_map_column_merging_values(self, small_table):
        mapped = small_table.map_column("color", lambda v: "warm" if v == "red" else "cool")
        assert mapped.domain("color") == ("warm", "cool")
        assert mapped.column("color").value_counts() == {"warm": 3, "cool": 5}

    def test_group_sizes(self, small_table):
        sizes = small_table.group_sizes(["label"])
        assert sizes == {("no",): 4, ("yes",): 4}

    def test_to_rows_roundtrip(self, small_table):
        rows = small_table.to_rows()
        rebuilt = Table.from_dict(
            {name: [r[name] for r in rows] for name in small_table.names},
            domains={name: small_table.domain(name) for name in small_table.names},
        )
        for name in small_table.names:
            assert rebuilt.codes(name).tolist() == small_table.codes(name).tolist()
