"""Incremental maintenance parity: ``apply_delta`` vs fresh rebuild.

The serving layer's correctness rests on one invariant: after any
sequence of row insertions/deletions folded in via
``ContingencyEngine.apply_delta``, every cached count tensor — and hence
every probability and score — is *bit-identical* to a fresh engine built
over the post-delta table.  Counts are integers, so exact equality is
the right bar (no tolerance).  Hypothesis drives random delta sequences;
directed tests cover the empty-delta and delete-all edges plus the
validation guards.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.scores import ScoreEstimator
from repro.data.table import Column, Table
from repro.estimation.engine import ContingencyEngine
from repro.utils.exceptions import EstimationError

CARDS = {"a": 3, "b": 4, "c": 2}
NAMES = tuple(CARDS)
SIGNATURES = [("a",), ("b",), ("c",), ("a", "b"), ("a", "c"), ("a", "b", "c")]


def make_table(codes: dict[str, list[int]]) -> Table:
    return Table(
        Column.from_codes(name, np.array(codes[name], dtype=np.int64), range(CARDS[name]))
        for name in NAMES
    )


def row_strategy():
    return st.tuples(*(st.integers(0, CARDS[n] - 1) for n in NAMES))


def rows_to_codes(rows: list[tuple[int, ...]]) -> dict[str, list[int]]:
    return {name: [row[i] for row in rows] for i, name in enumerate(NAMES)}


@st.composite
def delta_sequences(draw):
    """A base table plus a sequence of (insert rows, delete fractions)."""
    base = draw(st.lists(row_strategy(), min_size=1, max_size=25))
    steps = draw(
        st.lists(
            st.tuples(
                st.lists(row_strategy(), min_size=0, max_size=8),
                st.lists(st.floats(0, 1), min_size=0, max_size=6),
            ),
            min_size=1,
            max_size=4,
        )
    )
    return base, steps


class TestDeltaParity:
    @settings(max_examples=60, deadline=None)
    @given(delta_sequences())
    def test_tensor_and_probability_parity(self, case):
        base, steps = case
        mirror = [list(r) for r in base]
        engine = ContingencyEngine(make_table(rows_to_codes(base)))
        # Warm every signature so apply_delta must maintain them all.
        for signature in SIGNATURES:
            engine.tensor(signature)
        for inserted, delete_fracs in steps:
            n = len(mirror)
            deleted = sorted({int(f * (n - 1)) for f in delete_fracs}) if n else []
            engine.apply_delta(
                inserted_rows=[dict(zip(NAMES, row)) for row in inserted] or None,
                deleted_rows=deleted or None,
            )
            keep = [row for i, row in enumerate(mirror) if i not in set(deleted)]
            mirror = keep + [list(r) for r in inserted]

            fresh = ContingencyEngine(make_table(rows_to_codes(mirror)))
            assert engine.n_rows == len(mirror)
            for signature in SIGNATURES:
                maintained = engine.tensor(signature)
                rebuilt = fresh.tensor(signature)
                assert maintained.dtype == rebuilt.dtype
                assert np.array_equal(maintained, rebuilt), signature
            if mirror:
                for name in NAMES:
                    for code in range(CARDS[name]):
                        assert engine.probability({name: code}) == fresh.probability(
                            {name: code}
                        )

    @settings(max_examples=25, deadline=None)
    @given(st.lists(row_strategy(), min_size=2, max_size=20))
    def test_score_parity_after_delta(self, rows):
        """ScoreEstimator scores match a fresh estimator bit-for-bit."""
        table = make_table(rows_to_codes(rows)).drop(["c"])
        positive = np.array([r[2] == 1 for r in rows])
        est = ScoreEstimator(table, positive)
        for signature in (("a",), ("b",), ("a", "b")):  # warm tensors
            est.engine.tensor(tuple(sorted((*signature, est._outcome))))
        ins = Table(
            Column.from_codes(n, np.array([0, 1], dtype=np.int64), range(CARDS[n]))
            for n in ("a", "b")
        )
        est.apply_delta(ins, np.array([True, False]), deleted_rows=[0])
        fresh = ScoreEstimator(est._features, est._positive)

        def safe_scores(estimator, treatment, baseline):
            try:
                return estimator.scores(treatment, baseline)
            except EstimationError as exc:
                return ("unsupported", str(exc))

        for treatment, baseline in [({"a": 2}, {"a": 0}), ({"b": 3}, {"b": 1})]:
            assert safe_scores(est, treatment, baseline) == safe_scores(
                fresh, treatment, baseline
            )


class TestDeltaEdges:
    def test_empty_delta_is_noop(self):
        engine = ContingencyEngine(make_table(rows_to_codes([(0, 1, 0), (2, 3, 1)])))
        engine.tensor(("a", "b"))
        before = engine.tensor(("a", "b")).copy()
        assert engine.apply_delta() == 0
        assert engine.apply_delta(inserted_rows=[], deleted_rows=[]) == 0
        assert engine.version == 0
        assert np.array_equal(engine.tensor(("a", "b")), before)

    def test_delete_all_rows(self):
        rows = [(0, 1, 0), (2, 3, 1), (1, 0, 1)]
        engine = ContingencyEngine(make_table(rows_to_codes(rows)))
        for signature in SIGNATURES:
            engine.tensor(signature)
        version = engine.apply_delta(deleted_rows=[0, 1, 2])
        assert version == 1
        assert engine.n_rows == 0
        for signature in SIGNATURES:
            assert engine.tensor(signature).sum() == 0
        with pytest.raises(EstimationError):
            engine.probability({"a": 0})
        # The emptied engine accepts new rows and recovers exactly.
        engine.apply_delta(inserted_rows=[dict(zip(NAMES, r)) for r in rows])
        fresh = ContingencyEngine(make_table(rows_to_codes(rows)))
        for signature in SIGNATURES:
            assert np.array_equal(engine.tensor(signature), fresh.tensor(signature))

    def test_version_bumps_once_per_delta(self):
        engine = ContingencyEngine(make_table(rows_to_codes([(0, 0, 0)])))
        assert engine.version == 0
        engine.apply_delta(inserted_rows=[{"a": 1, "b": 1, "c": 1}])
        assert engine.version == 1
        engine.apply_delta(deleted_rows=[0])
        assert engine.version == 2

    def test_rejects_out_of_domain_codes(self):
        engine = ContingencyEngine(make_table(rows_to_codes([(0, 0, 0)])))
        with pytest.raises(ValueError, match="outside"):
            engine.apply_delta(inserted_rows=[{"a": 99, "b": 0, "c": 0}])

    def test_rejects_partial_schema(self):
        engine = ContingencyEngine(make_table(rows_to_codes([(0, 0, 0)])))
        with pytest.raises(ValueError, match="full schema"):
            engine.apply_delta(inserted_rows={"a": np.array([1])})

    def test_rejects_bad_delete_index(self):
        engine = ContingencyEngine(make_table(rows_to_codes([(0, 0, 0)])))
        with pytest.raises(IndexError):
            engine.apply_delta(deleted_rows=[5])

    def test_rejects_changed_domain(self):
        engine = ContingencyEngine(make_table(rows_to_codes([(0, 0, 0)])))
        other = Table(
            [Column.from_codes("a", np.array([0]), range(7))]
            + [
                Column.from_codes(n, np.array([0]), range(CARDS[n]))
                for n in ("b", "c")
            ]
        )
        with pytest.raises(ValueError, match="domain"):
            engine.apply_delta(inserted_rows=other)


class TestTableDeltaHooks:
    def test_encode_append_delete_round_trip(self):
        table = make_table(rows_to_codes([(0, 1, 0), (2, 3, 1)]))
        rows = [{"a": 1, "b": 0, "c": 1}, {"a": 2, "b": 2, "c": 0}]
        encoded = table.encode_rows(rows)
        assert {n: arr.tolist() for n, arr in encoded.items()} == {
            "a": [1, 2], "b": [0, 2], "c": [1, 0]
        }
        grown = table.append_rows(rows)
        assert len(grown) == 4
        assert grown.row(2) == rows[0] and grown.row(3) == rows[1]
        shrunk = grown.delete_rows([0, 2])
        assert len(shrunk) == 2
        assert shrunk.row(0) == table.row(1) and shrunk.row(1) == rows[1]

    def test_append_rows_requires_full_schema(self):
        from repro.utils.exceptions import DomainError

        table = make_table(rows_to_codes([(0, 1, 0)]))
        with pytest.raises(DomainError, match="missing column"):
            table.append_rows([{"a": 1}])

    def test_delete_rows_rejects_out_of_range(self):
        table = make_table(rows_to_codes([(0, 1, 0)]))
        with pytest.raises(IndexError):
            table.delete_rows([3])

    def test_schema_fingerprint_content_independent(self):
        t1 = make_table(rows_to_codes([(0, 1, 0)]))
        t2 = make_table(rows_to_codes([(2, 3, 1), (1, 1, 1)]))
        assert t1.schema_fingerprint() == t2.schema_fingerprint()
        assert t1.schema_fingerprint() != t1.drop(["c"]).schema_fingerprint()


class TestEngineStats:
    def test_stats_shape_and_counters(self):
        engine = ContingencyEngine(make_table(rows_to_codes([(0, 1, 0), (1, 2, 1)])))
        engine.tensor(("a",))
        engine.tensor(("a",))
        stats = engine.stats()
        for key in ("entries", "bytes", "hits", "misses", "evictions", "n_rows", "version"):
            assert key in stats
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["bytes"] > 0

    def test_byte_budget_evicts(self):
        engine = ContingencyEngine(
            make_table(rows_to_codes([(0, 1, 0), (1, 2, 1)])), max_bytes=0
        )
        engine.tensor(("a",))
        stats = engine.stats()
        assert stats["entries"] == 0
        assert stats["evictions"] == 1
        # Queries still answer correctly without the cache.
        assert engine.count({"a": 0}) == 1
