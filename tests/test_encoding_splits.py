"""Unit tests for feature encodings and train/test splitting."""

import numpy as np
import pytest

from repro.data.encoding import OneHotEncoder, ordinal_matrix
from repro.data.splits import train_test_split
from repro.data.table import Column, Table
from repro.utils.exceptions import NotFittedError


class TestOrdinalMatrix:
    def test_values_are_codes(self, small_table):
        m = ordinal_matrix(small_table, ["size"])
        assert m.dtype == np.float64
        assert m[:, 0].tolist() == [0.0, 1.0, 2.0, 1.0, 0.0, 2.0, 2.0, 1.0]

    def test_defaults_to_all_columns(self, small_table):
        assert ordinal_matrix(small_table).shape == (8, 3)


class TestOneHotEncoder:
    def test_feature_layout(self, small_table):
        enc = OneHotEncoder().fit(small_table, ["color", "label"])
        assert enc.n_features == 5
        assert enc.feature_names_ == [
            "color=red",
            "color=green",
            "color=blue",
            "label=no",
            "label=yes",
        ]

    def test_transform_one_hot_rows_sum_to_column_count(self, small_table):
        enc = OneHotEncoder().fit(small_table)
        X = enc.transform(small_table)
        assert X.shape == (8, 3 + 3 + 2)
        assert (X.sum(axis=1) == 3).all()

    def test_drop_first_reduces_width(self, small_table):
        enc = OneHotEncoder(drop_first=True).fit(small_table, ["color"])
        assert enc.n_features == 2
        X = enc.transform(small_table)
        # 'red' (first category) encodes as all-zeros.
        red_rows = small_table.mask(color="red")
        assert (X[red_rows] == 0).all()

    def test_transform_before_fit_raises(self, small_table):
        with pytest.raises(NotFittedError):
            OneHotEncoder().transform(small_table)

    def test_transform_rejects_changed_domain(self, small_table):
        enc = OneHotEncoder().fit(small_table, ["color"])
        altered = small_table.with_column(
            Column.from_codes(
                "color", small_table.codes("color"), ["r", "g", "b"], ordered=False
            )
        )
        with pytest.raises(ValueError, match="domain changed"):
            enc.transform(altered)

    def test_transform_codes_single_row(self, small_table):
        enc = OneHotEncoder().fit(small_table, ["color", "size"])
        row = enc.transform_codes({"color": 1, "size": 2})
        full = enc.transform(small_table.filter(color="green", size=2))
        assert np.array_equal(row, full[0])

    def test_feature_slice(self, small_table):
        enc = OneHotEncoder().fit(small_table, ["color", "size"])
        sl = enc.feature_slice("size")
        assert enc.feature_names_[sl] == ["size=0", "size=1", "size=2"]

    def test_fit_transform_equals_fit_then_transform(self, small_table):
        a = OneHotEncoder().fit_transform(small_table)
        b = OneHotEncoder().fit(small_table).transform(small_table)
        assert np.array_equal(a, b)


class TestTrainTestSplit:
    def _table(self, n=100):
        rng = np.random.default_rng(0)
        return Table.from_dict(
            {
                "x": rng.integers(0, 3, size=n).tolist(),
                "y": (rng.random(n) < 0.2).astype(int).tolist(),
            },
            domains={"x": [0, 1, 2], "y": [0, 1]},
        )

    def test_sizes(self):
        table = self._table(100)
        train, test = train_test_split(table, test_fraction=0.3, seed=0)
        assert len(train) == 70
        assert len(test) == 30

    def test_partition_is_exact(self):
        table = self._table(50)
        train, test = train_test_split(table, test_fraction=0.4, seed=1)
        assert len(train) + len(test) == 50

    def test_deterministic_given_seed(self):
        table = self._table(60)
        a_train, _ = train_test_split(table, seed=7)
        b_train, _ = train_test_split(table, seed=7)
        assert a_train.codes("x").tolist() == b_train.codes("x").tolist()

    def test_different_seeds_differ(self):
        table = self._table(60)
        a_train, _ = train_test_split(table, seed=1)
        b_train, _ = train_test_split(table, seed=2)
        assert a_train.codes("x").tolist() != b_train.codes("x").tolist()

    def test_invalid_fraction_rejected(self):
        table = self._table(10)
        with pytest.raises(ValueError):
            train_test_split(table, test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(table, test_fraction=1.0)

    def test_stratified_preserves_rates(self):
        table = self._table(400)
        train, test = train_test_split(table, test_fraction=0.25, seed=3, stratify="y")
        overall = table.codes("y").mean()
        assert abs(train.codes("y").mean() - overall) < 0.03
        assert abs(test.codes("y").mean() - overall) < 0.03
