"""Multi-tenant HTTP front end: registry routes, tenant scoping, shutdown."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import fit_table_model
from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.store import Registry
from repro.service.server import create_server

NAMES = ("a", "b")


def make_lewis(seed: int, n: int = 150) -> Lewis:
    rng = np.random.default_rng(seed)
    rows = {
        "a": rng.integers(0, 3, n).tolist(),
        "b": rng.integers(0, 3, n).tolist(),
    }
    rows["y"] = [int(a + b >= 2) for a, b in zip(rows["a"], rows["b"])]
    table = Table.from_dict(
        rows, domains={"a": [0, 1, 2], "b": [0, 1, 2], "y": [0, 1]}
    )
    model = fit_table_model("logistic", table, list(NAMES), "y", seed=seed)
    return Lewis(
        model,
        data=table.select(list(NAMES)),
        attributes=list(NAMES),
        positive_outcome=1,
        infer_orderings=False,
    )


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    registry = Registry(tmp_path_factory.mktemp("store"), background=True)
    registry.add("alpha", make_lewis(1), default_actionable=["a", "b"])
    registry.add("beta", make_lewis(2))
    server = create_server(registry=registry, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server, registry
    server.shutdown()
    server.server_close()
    registry.close()


@pytest.fixture(scope="module")
def base_url(served):
    host, port = served[0].server_address[:2]
    return f"http://{host}:{port}"


def get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def post(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def delete(url: str):
    request = urllib.request.Request(url, method="DELETE")
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def http_error(fn, *args) -> tuple[int, dict]:
    try:
        fn(*args)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError("expected an HTTP error")


class TestRegistryEndpoints:
    def test_listing(self, base_url):
        status, body = get(f"{base_url}/v1/registry")
        assert status == 200
        assert set(body["tenants"]) == {"alpha", "beta"}
        for info in body["tenants"].values():
            assert set(info) == {"loaded", "snapshots"}

    def test_tenant_detail(self, base_url):
        status, body = get(f"{base_url}/v1/registry/alpha")
        assert status == 200
        assert body["name"] == "alpha"
        assert body["snapshots"]
        assert set(body["latest"]) == {
            "snapshot_id", "wal_seq", "fingerprint", "n_rows",
        }

    def test_unknown_tenant_detail_404(self, base_url):
        code, body = http_error(get, f"{base_url}/v1/registry/ghost")
        assert code == 404 and "error" in body

    def test_snapshot_endpoint(self, base_url):
        post(f"{base_url}/v1/alpha/update", {"insert": [{"a": 0, "b": 1}]})
        status, body = post(f"{base_url}/v1/registry/alpha/snapshot", {})
        assert status == 200
        assert body["name"] == "alpha"
        assert int(body["snapshot_id"]) >= 2

    def test_evict_endpoint(self, served, base_url):
        _server, registry = served
        get(f"{base_url}/v1/beta/health")  # ensure loaded
        status, body = post(f"{base_url}/v1/registry/beta/evict", {})
        assert status == 200 and body["evicted"] is True
        assert "beta" not in registry.loaded()

    def test_delete_removes_tenant(self, served, base_url):
        _server, registry = served
        registry.add("doomed", make_lewis(3))
        status, body = delete(f"{base_url}/v1/registry/doomed")
        assert status == 200 and body["removed"] is True
        code, _ = http_error(get, f"{base_url}/v1/doomed/health")
        assert code == 404


def test_reserved_route_literals_stay_in_sync():
    """server.RESERVED_SEGMENTS and artifacts.RESERVED_TENANT_NAMES are
    deliberately duplicated literals (importing across the packages
    would cycle); drift would let users create HTTP-unreachable tenants."""
    from repro.service.server import RESERVED_SEGMENTS
    from repro.store.artifacts import RESERVED_TENANT_NAMES

    assert set(RESERVED_SEGMENTS) == set(RESERVED_TENANT_NAMES)


class TestProcessLevelEndpoints:
    def test_registry_only_health_answers_without_loading(self, served, base_url):
        _server, registry = served
        for name in list(registry.loaded()):
            registry.evict(name)
        status, body = get(f"{base_url}/v1/health")
        assert status == 200
        assert body["status"] == "ok" and body["mode"] == "registry"
        assert body["tenants"] >= 2
        assert registry.loaded() == []  # liveness did not force a restore

    def test_registry_only_stats(self, base_url):
        status, body = get(f"{base_url}/v1/stats")
        assert status == 200
        assert "tenants" in body and "sessions" in body


class TestTenantScopedEndpoints:
    def test_health_and_stats(self, base_url):
        status, body = get(f"{base_url}/v1/alpha/health")
        assert status == 200
        assert body["tenant"] == "alpha"
        status, body = get(f"{base_url}/v1/alpha/stats")
        assert status == 200
        assert body["tenant"] == "alpha"
        assert "wal" in body

    def test_explain_and_cache_are_per_tenant(self, base_url):
        status, first = post(
            f"{base_url}/v1/alpha/explain/global", {"max_pairs_per_attribute": 4}
        )
        assert status == 200
        assert set(first["result"]["ranking"]) == {"a", "b"}
        _status, second = post(
            f"{base_url}/v1/alpha/explain/global", {"max_pairs_per_attribute": 4}
        )
        assert second["cached"] is True
        # the twin query against the other tenant is not cross-served
        _status, other = post(
            f"{base_url}/v1/beta/explain/global", {"max_pairs_per_attribute": 4}
        )
        assert other["cached"] is False

    def test_recourse_uses_tenant_default_actionable(self, base_url):
        status, body = get(f"{base_url}/v1/alpha/health")
        assert status == 200
        status, body = post(f"{base_url}/v1/alpha/recourse", {"index": 0})
        assert status in (200, 409)  # solvable or provably infeasible

    def test_update_round_trips_through_wal(self, served, base_url):
        _server, registry = served
        before = len(registry.get("alpha").lewis.data)
        status, body = post(
            f"{base_url}/v1/alpha/update", {"insert": [{"a": 2, "b": 2}]}
        )
        assert status == 200
        assert body["result"]["n_rows"] == before + 1
        assert body["result"]["wal_seq"] >= 1

    def test_unknown_tenant_404(self, base_url):
        code, body = http_error(
            post, f"{base_url}/v1/ghost/explain/global", {}
        )
        assert code == 404 and "unknown tenant" in body["error"]

    def test_tenant_with_bad_endpoint_404(self, base_url):
        code, _ = http_error(post, f"{base_url}/v1/alpha/nonsense", {})
        assert code == 404

    def test_no_default_session_404(self, base_url):
        code, body = http_error(post, f"{base_url}/v1/explain/global", {})
        assert code == 404 and "tenant" in body["error"]

    def test_client_errors_still_400(self, base_url):
        code, body = http_error(
            post,
            f"{base_url}/v1/alpha/explain/local",
            {"index": 1, "individual": {"a": 0}},
        )
        assert code == 400


class TestGracefulShutdown:
    def test_drain_answers_inflight_requests(self, tmp_path):
        import time

        registry = Registry(tmp_path / "store", background=True)
        registry.add("alpha", make_lewis(9))
        session = registry.get("alpha")

        # Slow the engine work down and signal when a request is truly
        # in flight, so shutdown provably races an accepted request.
        started = threading.Event()
        original = session.lewis.explain_global

        def slow_explain(**kwargs):
            started.set()
            time.sleep(0.3)
            return original(**kwargs)

        session.lewis.explain_global = slow_explain
        server = create_server(registry=registry, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        host, port = server.server_address[:2]
        results: list = []

        def inflight_request():
            results.append(
                post(
                    f"http://{host}:{port}/v1/alpha/explain/global",
                    {"max_pairs_per_attribute": 8},
                )
            )

        worker = threading.Thread(target=inflight_request)
        worker.start()
        assert started.wait(timeout=10)
        server.shutdown()  # stop accepting while the request is in flight
        server.server_close()  # drains: joins the handler thread
        worker.join(timeout=30)
        thread.join(timeout=10)
        registry.close()
        assert results and results[0][0] == 200
