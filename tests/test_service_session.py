"""ExplainerSession behaviour: request objects, caching, updates."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.service import (
    ExplainerSession,
    GlobalExplainRequest,
    LocalExplainRequest,
    ResultCache,
    TableDelta,
)
from repro.service.session import model_fingerprint


def tiny_model(features: Table) -> np.ndarray:
    """Deterministic stand-in black box: positive iff a + b >= 2."""
    return (features.codes("a") + features.codes("b")) >= 2


def make_table(seed: int = 0, n: int = 240) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "a": rng.integers(0, 3, n).tolist(),
            "b": rng.integers(0, 3, n).tolist(),
            "sex": rng.choice(["F", "M"], n).tolist(),
        },
        domains={"a": [0, 1, 2], "b": [0, 1, 2], "sex": ["F", "M"]},
    )


@pytest.fixture()
def session():
    lewis = Lewis(
        tiny_model,
        data=make_table(),
        feature_names=["a", "b"],
        attributes=["a", "b", "sex"],
        infer_orderings=False,
    )
    with ExplainerSession(lewis, default_actionable=["a", "b"]) as s:
        yield s


class TestRequestHandling:
    def test_global_matches_direct_lewis_call(self, session):
        response = session.explain_global()
        direct = session.lewis.explain_global()
        assert response["cached"] is False
        assert response["result"]["ranking"] == direct.ranking()
        by_attr = {r["attribute"]: r for r in response["result"]["attributes"]}
        for score in direct.attribute_scores:
            assert by_attr[score.attribute]["necessity"] == score.necessity
            assert by_attr[score.attribute]["sufficiency"] == score.sufficiency

    def test_context_request_coerces_json_labels(self, session):
        # JSON clients send "1"; the domain holds int 1.
        response = session.explain_context({"a": "1"})
        assert response["result"]["context"] == {"a": 1}

    def test_local_by_index_matches_direct(self, session):
        response = session.explain_local(index=5)
        direct = session.lewis.explain_local(index=5)
        assert response["result"]["outcome_positive"] == direct.outcome_positive
        assert [c["attribute"] for c in response["result"]["contributions"]] == [
            c.attribute for c in direct.contributions
        ]

    def test_local_requires_exactly_one_selector(self, session):
        with pytest.raises(ValueError):
            session.handle(LocalExplainRequest(index=None, individual=None))

    def test_scores_match_scores_batch(self, session):
        contrasts = [({"a": 2}, {"a": 0}), ({"b": 2}, {"b": 1})]
        response = session.scores(contrasts)
        direct = session.lewis.scores_batch(contrasts)
        assert [s["necessity"] for s in response["result"]["scores"]] == [
            t.necessity for t in direct
        ]

    def test_audit_defaults_to_known_protected_names(self, session):
        response = session.audit()
        verdicts = response["result"]["verdicts"]
        assert [v["attribute"] for v in verdicts] == ["sex"]
        assert set(verdicts[0]) >= {"necessity", "sufficiency", "is_counterfactually_fair"}

    def test_recourse_without_actionable_raises(self):
        lewis = Lewis(
            tiny_model,
            data=make_table(),
            feature_names=["a", "b"],
            attributes=["a", "b", "sex"],
            infer_orderings=False,
        )
        with ExplainerSession(lewis) as bare:
            with pytest.raises(ValueError, match="actionable"):
                bare.recourse(index=int(lewis.negative_indices()[0]))

    def test_responses_are_json_serializable(self, session):
        for response in (
            session.explain_global(),
            session.explain_context({"sex": "M"}),
            session.explain_local(index=0),
            session.audit(),
        ):
            json.dumps(response)


class TestCaching:
    def test_repeat_request_hits_cache(self, session):
        first = session.explain_global()
        second = session.explain_global()
        assert first["cached"] is False and second["cached"] is True
        assert second["result"] == first["result"]
        assert session.cache.stats()["hits"] == 1

    def test_distinct_params_miss(self, session):
        session.explain_global()
        response = session.explain_global(max_pairs_per_attribute=2)
        assert response["cached"] is False

    def test_equivalent_requests_share_an_entry(self, session):
        session.handle(GlobalExplainRequest(attributes=("a", "b")))
        response = session.handle(GlobalExplainRequest(attributes=("a", "b")))
        assert response["cached"] is True

    def test_shared_cache_distinguishes_data_states(self):
        """Same model + schema but different rows must never cross-serve."""
        cache = ResultCache()
        lewis_a = Lewis(
            tiny_model, data=make_table(0), feature_names=["a", "b"],
            attributes=["a", "b", "sex"],
            infer_orderings=False,
        )
        lewis_b = Lewis(
            tiny_model, data=make_table(1), feature_names=["a", "b"],
            attributes=["a", "b", "sex"],
            infer_orderings=False,
        )
        with ExplainerSession(lewis_a, cache=cache) as sa, ExplainerSession(
            lewis_b, cache=cache
        ) as sb:
            assert sa.fingerprint == sb.fingerprint  # model + schema agree
            assert sa.state_token != sb.state_token  # content does not
            ra = sa.explain_global()
            rb = sb.explain_global()
            assert ra["cached"] is False and rb["cached"] is False
            assert len(cache) == 2

    def test_shared_cache_serves_identical_sessions(self):
        cache = ResultCache()

        def build():
            return Lewis(
                tiny_model, data=make_table(0), feature_names=["a", "b"],
                attributes=["a", "b", "sex"],
                infer_orderings=False,
            )

        with ExplainerSession(build(), cache=cache) as sa, ExplainerSession(
            build(), cache=cache
        ) as sb:
            assert sa.state_token == sb.state_token
            sa.explain_global()
            assert sb.explain_global()["cached"] is True

    def test_divergent_update_histories_do_not_collide(self):
        """Equal version counters with different deltas must not collide."""
        cache = ResultCache()

        def build():
            return Lewis(
                tiny_model, data=make_table(0), feature_names=["a", "b"],
                attributes=["a", "b", "sex"],
                infer_orderings=False,
            )

        with ExplainerSession(build(), cache=cache) as sa, ExplainerSession(
            build(), cache=cache
        ) as sb:
            sa.update({"delete": [0]})
            sb.update({"delete": [1]})
            assert sa.table_version == sb.table_version == 1
            assert sa.state_token != sb.state_token
            assert sa.explain_global()["cached"] is False
            assert sb.explain_global()["cached"] is False


class TestUpdates:
    def test_update_bumps_version_and_invalidates(self, session):
        session.explain_global()
        v0 = session.table_version
        rows = [session.lewis.data.row(i) for i in range(3)]
        response = session.update({"insert": rows, "delete": [0]})
        assert response["result"]["version"] == v0 + 1
        assert response["result"]["purged"] >= 1
        after = session.explain_global()
        assert after["cached"] is False

    def test_update_parity_with_fresh_explainer(self, session):
        rows = [session.lewis.data.row(i) for i in range(10)]
        session.update({"insert": rows, "delete": [2, 4, 6]})
        incremental = session.explain_global()["result"]
        fresh_lewis = Lewis(
            tiny_model,
            data=session.lewis.data,
            feature_names=["a", "b"],
            attributes=["a", "b", "sex"],
            infer_orderings=False,
        )
        with ExplainerSession(fresh_lewis) as fresh:
            rebuilt = fresh.explain_global()["result"]
        assert incremental == rebuilt

    def test_handle_update_request_invalidates_too(self, session):
        """Updates routed through handle() must purge like session.update()."""
        from repro.service import UpdateRequest

        baseline = session.explain_global()
        rows = [session.lewis.data.row(i) for i in range(30)]
        response = session.handle(
            UpdateRequest(delta=TableDelta(insert=tuple(rows)))
        )
        assert response["kind"] == "update"
        assert response["result"]["purged"] >= 1
        after = session.explain_global()
        assert after["cached"] is False
        assert after["result"] != baseline["result"]

    def test_empty_update_keeps_version(self, session):
        v0 = session.table_version
        response = session.update(TableDelta())
        assert response["result"]["version"] == v0
        assert session.table_version == v0

    def test_update_rejects_unknown_label(self, session):
        from repro.utils.exceptions import DomainError

        with pytest.raises(DomainError):
            session.update({"insert": [{"a": 0, "b": 0, "sex": "Martian"}]})

    def test_delta_validation(self):
        with pytest.raises(ValueError, match="unknown update fields"):
            TableDelta.from_json({"upsert": []})
        with pytest.raises(ValueError, match="insert"):
            TableDelta.from_json({"insert": "nope"})
        with pytest.raises(ValueError, match="delete"):
            TableDelta.from_json({"delete": [1.5]})


class TestIntrospection:
    def test_stats_shape(self, session):
        session.explain_global()
        stats = session.stats()
        assert stats["requests_served"] == 1
        assert stats["table_version"] == 0
        for section in ("cache", "engine", "scheduler"):
            assert isinstance(stats[section], dict)
        json.dumps(stats)

    def test_fingerprint_stable_and_model_sensitive(self, session):
        table = make_table()
        assert model_fingerprint(tiny_model, table) == model_fingerprint(
            tiny_model, table
        )

    def test_render_service_stats(self, session):
        from repro.report import render_service_stats

        session.explain_global()
        text = render_service_stats(session.stats(), title="stats")
        assert text.startswith("stats")
        assert "cache:" in text and "hits" in text
