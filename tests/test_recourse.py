"""Unit tests for the recourse solver and the LinearIP baseline."""

import numpy as np
import pytest

from repro.core.recourse import Recourse, RecourseAction, RecourseSolver, unit_step_cost
from repro.core.scores import ScoreEstimator
from repro.data.table import Column, Table
from repro.utils.exceptions import RecourseInfeasibleError
from repro.xai.linear_ip import LinearIPRecourse


@pytest.fixture(scope="module")
def recourse_setup():
    """Two ordinal features, outcome = 1{a + b >= 3}; rich support."""
    rng = np.random.default_rng(7)
    n = 6_000
    a = rng.integers(0, 4, size=n)
    b = rng.integers(0, 3, size=n)
    table = Table(
        [
            Column.from_codes("a", a, (0, 1, 2, 3)),
            Column.from_codes("b", b, (0, 1, 2)),
        ]
    )
    positive = (a + b) >= 3
    est = ScoreEstimator(table, positive)
    return table, positive, est


class TestUnitStepCost:
    def test_symmetric_in_distance(self):
        assert unit_step_cost("x", 0, 2) == 2.0
        assert unit_step_cost("x", 2, 0) == 2.0

    def test_zero_for_no_move(self):
        assert unit_step_cost("x", 1, 1) == 0.0


class TestRecourseSolver:
    def test_empty_actionable_rejected(self, recourse_setup):
        _t, _p, est = recourse_setup
        with pytest.raises(ValueError):
            RecourseSolver(est, [])

    def test_unknown_actionable_rejected(self, recourse_setup):
        _t, _p, est = recourse_setup
        with pytest.raises(KeyError):
            RecourseSolver(est, ["zzz"])

    def test_solution_reaches_threshold(self, recourse_setup):
        _t, _p, est = recourse_setup
        solver = RecourseSolver(est, ["a", "b"])
        recourse = solver.solve({"a": 0, "b": 0}, alpha=0.8)
        assert recourse.estimated_sufficiency >= 0.8 - 1e-9
        new = dict({"a": 0, "b": 0}, **{r.attribute: None for r in recourse.actions})
        # Decode actions back to codes and verify the deterministic rule.
        codes = {"a": 0, "b": 0}
        for action in recourse.actions:
            domain = est.table.column(action.attribute).categories
            codes[action.attribute] = domain.index(action.new_value)
        assert codes["a"] + codes["b"] >= 3

    def test_no_action_needed_for_satisfied_individual(self, recourse_setup):
        _t, _p, est = recourse_setup
        solver = RecourseSolver(est, ["a", "b"])
        recourse = solver.solve({"a": 3, "b": 2}, alpha=0.5)
        assert recourse.is_empty

    def test_cost_minimality_against_enumeration(self, recourse_setup):
        _t, _p, est = recourse_setup
        solver = RecourseSolver(est, ["a", "b"])
        start = {"a": 1, "b": 0}
        recourse = solver.solve(start, alpha=0.8)
        # Enumerate all (a, b) reaching the rule and compare unit costs.
        best = min(
            abs(a - start["a"]) + abs(b - start["b"])
            for a in range(4)
            for b in range(3)
            if a + b >= 3
        )
        assert recourse.total_cost <= best + 1.0  # surrogate may add 1 step

    def test_custom_cost_function_changes_solution(self, recourse_setup):
        _t, _p, est = recourse_setup

        def expensive_a(attr, cur, new):
            base = abs(new - cur)
            return base * (100.0 if attr == "a" else 1.0)

        cheap = RecourseSolver(est, ["a", "b"], cost_fn=expensive_a)
        recourse = cheap.solve({"a": 1, "b": 0}, alpha=0.7)
        touched = {r.attribute for r in recourse.actions}
        assert "b" in touched  # prefers the cheap attribute

    def test_actions_have_decoded_values(self, recourse_setup):
        _t, _p, est = recourse_setup
        solver = RecourseSolver(est, ["a", "b"])
        recourse = solver.solve({"a": 0, "b": 1}, alpha=0.8)
        for action in recourse.actions:
            assert isinstance(action, RecourseAction)
            assert action.new_value in est.table.column(action.attribute).categories

    def test_statements_render(self, recourse_setup):
        _t, _p, est = recourse_setup
        solver = RecourseSolver(est, ["a", "b"])
        recourse = solver.solve({"a": 0, "b": 0}, alpha=0.8)
        lines = recourse.statements()
        assert any("Change" in line for line in lines)
        assert any("positive decision" in line for line in lines)

    def test_constraint_count_linear_in_actionable(self, recourse_setup):
        _t, _p, est = recourse_setup
        one = RecourseSolver(est, ["a"]).solve({"a": 0, "b": 2}, alpha=0.6)
        two = RecourseSolver(est, ["a", "b"]).solve({"a": 0, "b": 0}, alpha=0.6)
        # One exclusivity row per actionable attribute + the sufficiency row.
        assert one.n_constraints == 2
        assert two.n_constraints == 3

    def test_invalid_alpha_rejected(self, recourse_setup):
        _t, _p, est = recourse_setup
        solver = RecourseSolver(est, ["a"])
        with pytest.raises(ValueError):
            solver.solve({"a": 0, "b": 0}, alpha=1.5)


class TestLinearIPBaseline:
    def test_reaches_target_when_feasible(self, recourse_setup):
        table, positive, _est = recourse_setup
        lip = LinearIPRecourse(table, positive, ["a", "b"])
        result = lip.solve({"a": 0, "b": 0}, success_probability=0.7)
        assert result.achieved_probability >= 0.7 - 0.05

    def test_infeasible_at_extreme_threshold(self, recourse_setup):
        table, positive, _est = recourse_setup
        lip = LinearIPRecourse(table, positive, ["b"])  # b alone cannot reach
        with pytest.raises(RecourseInfeasibleError):
            lip.solve({"a": 0, "b": 0}, success_probability=0.999)

    def test_cost_reported(self, recourse_setup):
        table, positive, _est = recourse_setup
        lip = LinearIPRecourse(table, positive, ["a", "b"])
        result = lip.solve({"a": 0, "b": 0}, success_probability=0.6)
        assert result.total_cost == sum(a.cost for a in result.actions)

    def test_empty_actionable_rejected(self, recourse_setup):
        table, positive, _est = recourse_setup
        with pytest.raises(ValueError):
            LinearIPRecourse(table, positive, [])
