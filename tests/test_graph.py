"""Unit tests for causal diagrams: structure, d-separation, backdoor."""

import pytest

from repro.causal.graph import CausalDiagram
from repro.utils.exceptions import GraphError


@pytest.fixture()
def chain():
    """A -> B -> C"""
    return CausalDiagram([("A", "B"), ("B", "C")])


@pytest.fixture()
def confounded():
    """Classic confounding: Z -> X, Z -> Y, X -> Y."""
    return CausalDiagram([("Z", "X"), ("Z", "Y"), ("X", "Y")])


@pytest.fixture()
def collider():
    """X -> C <- Y (C is a collider)."""
    return CausalDiagram([("X", "C"), ("Y", "C")])


@pytest.fixture()
def loan():
    """The paper's Figure 2: G -> {R, O}, A -> {R, D, O}, R -> O, D -> O."""
    return CausalDiagram(
        [
            ("G", "R"),
            ("G", "O"),
            ("A", "R"),
            ("A", "D"),
            ("A", "O"),
            ("R", "O"),
            ("D", "O"),
        ]
    )


class TestStructure:
    def test_cycle_rejected(self):
        with pytest.raises(GraphError, match="cycle"):
            CausalDiagram([("A", "B"), ("B", "A")])

    def test_isolated_nodes_kept(self):
        g = CausalDiagram([("A", "B")], nodes=["A", "B", "C"])
        assert set(g.nodes) == {"A", "B", "C"}

    def test_parents_children(self, confounded):
        assert confounded.parents("Y") == ["X", "Z"]
        assert confounded.children("Z") == ["X", "Y"]

    def test_ancestors_descendants(self, chain):
        assert chain.ancestors("C") == {"A", "B"}
        assert chain.descendants("A") == {"B", "C"}

    def test_non_descendants(self, chain):
        assert chain.non_descendants("B") == {"A"}
        assert chain.non_descendants("C") == {"A", "B"}

    def test_non_descendants_of_set(self, loan):
        assert loan.non_descendants_of(["R", "D"]) == {"G", "A"}

    def test_descendants_of_excludes_the_set(self, chain):
        assert chain.descendants_of(["A", "B"]) == {"C"}

    def test_unknown_node_raises(self, chain):
        with pytest.raises(GraphError, match="unknown"):
            chain.parents("Q")

    def test_topological_order_respects_edges(self, loan):
        order = loan.topological_order()
        for cause, effect in loan.edges:
            assert order.index(cause) < order.index(effect)

    def test_contains(self, chain):
        assert "A" in chain
        assert "Q" not in chain


class TestDSeparation:
    def test_chain_blocked_by_middle(self, chain):
        assert chain.d_separated(["A"], ["C"], ["B"])
        assert not chain.d_separated(["A"], ["C"])

    def test_collider_opens_when_conditioned(self, collider):
        assert collider.d_separated(["X"], ["Y"])
        assert not collider.d_separated(["X"], ["Y"], ["C"])

    def test_confounder_blocked_by_z(self, confounded):
        # Remove the direct edge effect: X and Y stay dependent through
        # the direct edge, so check Z vs a pure backdoor pair instead.
        g = CausalDiagram([("Z", "X"), ("Z", "Y")])
        assert not g.d_separated(["X"], ["Y"])
        assert g.d_separated(["X"], ["Y"], ["Z"])


class TestBackdoor:
    def test_confounder_set_satisfies(self, confounded):
        assert confounded.satisfies_backdoor("X", "Y", ["Z"])

    def test_empty_set_fails_under_confounding(self, confounded):
        assert not confounded.satisfies_backdoor("X", "Y", [])

    def test_descendant_of_treatment_rejected(self, chain):
        # B is a descendant of A.
        assert not chain.satisfies_backdoor("A", "C", ["B"])

    def test_empty_set_ok_without_confounding(self, chain):
        assert chain.satisfies_backdoor("A", "C", [])

    def test_backdoor_set_finds_confounder(self, confounded):
        assert confounded.backdoor_set("X", "Y") == ["Z"]

    def test_backdoor_set_empty_when_unconfounded(self, chain):
        assert chain.backdoor_set("A", "C") == []

    def test_backdoor_set_respects_forbidden(self, confounded):
        assert confounded.backdoor_set("X", "Y", forbidden=["Z"]) is None

    def test_backdoor_set_paper_figure2(self, loan):
        # {G, A} satisfies the criterion for D -> O (the paper's example).
        found = loan.backdoor_set("D", "O")
        assert found is not None
        assert set(found) <= {"G", "A"}
        assert loan.satisfies_backdoor("D", "O", ["A"])

    def test_set_treatment_backdoor(self, loan):
        found = loan.backdoor_set(["R", "D"], "O")
        assert found is not None
        assert loan.satisfies_backdoor(["R", "D"], "O", found)


class TestDerivedGraphs:
    def test_with_outcome_adds_edges(self, chain):
        g = chain.with_outcome("O", inputs=["B", "C"])
        assert ("B", "O") in g.edges
        assert ("C", "O") in g.edges
        assert set(chain.edges) <= set(g.edges)

    def test_subgraph_restricts(self, loan):
        sub = loan.subgraph(["G", "A", "R"])
        assert set(sub.nodes) == {"G", "A", "R"}
        assert ("G", "R") in sub.edges
        assert all(n in {"G", "A", "R"} for e in sub.edges for n in e)

    def test_subgraph_unknown_node(self, loan):
        with pytest.raises(GraphError):
            loan.subgraph(["G", "Q"])
