"""Unit tests for the PC causal-discovery algorithm."""

import numpy as np
import pytest

from repro.causal.discovery import (
    PCAlgorithm,
    PartiallyDirectedGraph,
    g_square_test,
    structural_hamming_distance,
)
from repro.causal.graph import CausalDiagram
from repro.data import load_dataset
from repro.data.table import Column, Table
from repro.utils.exceptions import GraphError


def _table(**cols):
    return Table(
        [Column.from_values(name, list(codes)) for name, codes in cols.items()]
    )


class TestGSquareTest:
    def test_independent_variables_high_p(self):
        rng = np.random.default_rng(0)
        t = _table(a=rng.integers(0, 3, 5_000), b=rng.integers(0, 3, 5_000))
        assert g_square_test(t, "a", "b") > 0.01

    def test_dependent_variables_low_p(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, 5_000)
        b = (a + (rng.random(5_000) < 0.2)) % 3
        t = _table(a=a, b=b)
        assert g_square_test(t, "a", "b") < 1e-6

    def test_conditional_independence_detected(self):
        """a <- c -> b: a ⊥ b | c but a ̸⊥ b."""
        rng = np.random.default_rng(2)
        c = rng.integers(0, 2, 8_000)
        a = (c + (rng.random(8_000) < 0.2)) % 2
        b = (c + (rng.random(8_000) < 0.2)) % 2
        t = _table(a=a, b=b, c=c)
        assert g_square_test(t, "a", "b") < 1e-6
        assert g_square_test(t, "a", "b", ["c"]) > 0.01

    def test_no_informative_stratum_returns_one(self):
        t = _table(a=[0, 0, 0], b=[1, 1, 1])
        assert g_square_test(t, "a", "b") == 1.0

    def test_symmetric_in_arguments(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 2, 2_000)
        b = (a + (rng.random(2_000) < 0.3)) % 2
        t = _table(a=a, b=b)
        assert g_square_test(t, "a", "b") == pytest.approx(
            g_square_test(t, "b", "a")
        )


class TestPartiallyDirectedGraph:
    def test_edge_lifecycle(self):
        g = PartiallyDirectedGraph(["a", "b", "c"])
        g.add_undirected("a", "b")
        assert g.has_edge("a", "b") and g.has_edge("b", "a")
        g.orient("a", "b")
        assert g.is_directed("a", "b")
        assert not g.is_directed("b", "a")
        g.remove("a", "b")
        assert not g.has_edge("a", "b")

    def test_neighbours(self):
        g = PartiallyDirectedGraph(["a", "b", "c"])
        g.add_undirected("a", "b")
        g.orient("c", "a")
        assert g.neighbours("a") == {"b", "c"}

    def test_to_diagram_orients_by_order(self):
        g = PartiallyDirectedGraph(["a", "b"])
        g.add_undirected("a", "b")
        assert g.to_diagram(["a", "b"]).edges == [("a", "b")]
        assert g.to_diagram(["b", "a"]).edges == [("b", "a")]

    def test_to_diagram_missing_order_node(self):
        g = PartiallyDirectedGraph(["a", "b"])
        with pytest.raises(GraphError):
            g.to_diagram(["a"])


class TestPCAlgorithm:
    def test_recovers_chain_skeleton(self):
        """a -> b -> c: skeleton a-b, b-c; a-c removed given b.

        A finite-sample CI test rejects a true independence with
        probability alpha, so recovery is checked over several seeds and
        required for the majority.
        """
        recovered = 0
        for seed in range(5):
            rng = np.random.default_rng(seed)
            a = rng.integers(0, 2, 10_000)
            b = (a + (rng.random(10_000) < 0.15)) % 2
            c = (b + (rng.random(10_000) < 0.15)) % 2
            t = _table(a=a, b=b, c=c)
            cpdag = PCAlgorithm(alpha=0.001, max_condition_size=1).fit(t)
            recovered += (
                cpdag.has_edge("a", "b")
                and cpdag.has_edge("b", "c")
                and not cpdag.has_edge("a", "c")
            )
        assert recovered >= 4

    def test_orients_collider(self):
        """a -> c <- b is the only orientation PC can identify alone.

        The collider mechanism is OR-like (not XOR, whose pairwise
        independence is invisible to constraint-based discovery).
        """
        oriented = 0
        for seed in range(5):
            rng = np.random.default_rng(seed)
            a = rng.integers(0, 2, 12_000)
            b = rng.integers(0, 2, 12_000)
            noise = rng.random(12_000)
            c = ((a + b) >= 1).astype(int)
            c = np.where(noise < 0.1, 1 - c, c)
            t = _table(a=a, b=b, c=c)
            cpdag = PCAlgorithm(alpha=0.001, max_condition_size=1).fit(t)
            oriented += cpdag.is_directed("a", "c") and cpdag.is_directed("b", "c")
        assert oriented >= 4

    def test_recovers_german_syn_graph_exactly(self):
        bundle = load_dataset("german_syn", n_rows=15_000, seed=0)
        features = bundle.table.select(bundle.feature_names)
        learned = PCAlgorithm(alpha=0.01, max_condition_size=2).fit_diagram(
            features, order=bundle.feature_names
        )
        assert structural_hamming_distance(learned, bundle.graph) == 0

    def test_learned_graph_usable_by_lewis(self):
        from repro import Lewis, fit_table_model, train_test_split

        bundle = load_dataset("german_syn", n_rows=10_000, seed=0)
        features = bundle.table.select(bundle.feature_names)
        learned = PCAlgorithm(alpha=0.01, max_condition_size=2).fit_diagram(
            features, order=bundle.feature_names
        )
        train, test = train_test_split(bundle.table, seed=0)
        model = fit_table_model(
            "random_forest_regressor", train, bundle.feature_names, bundle.label,
            seed=0, n_estimators=10,
        )
        lew = Lewis(model, data=test, graph=learned, threshold=0.5)
        exp = lew.explain_global()
        assert all(0 <= s.necessity_sufficiency <= 1 for s in exp.attribute_scores)


class TestStructuralHammingDistance:
    def test_identical_graphs_zero(self):
        g = CausalDiagram([("a", "b")])
        assert structural_hamming_distance(g, g) == 0

    def test_missing_edge_costs_one(self):
        a = CausalDiagram([("a", "b")], nodes=["a", "b", "c"])
        b = CausalDiagram([("a", "b"), ("b", "c")])
        assert structural_hamming_distance(a, b) == 1

    def test_wrong_orientation_costs_one(self):
        a = CausalDiagram([("a", "b")])
        b = CausalDiagram([("b", "a")])
        assert structural_hamming_distance(a, b) == 1
