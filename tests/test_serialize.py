"""Round-trip tests for JSON model serialisation."""

import numpy as np
import pytest

from repro.models.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.models.forest import RandomForestClassifier, RandomForestRegressor
from repro.models.linear import LinearRegression, LogisticRegression
from repro.models.neural import NeuralNetworkClassifier
from repro.models.pipeline import fit_table_model
from repro.models.serialize import (
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.models.tree import DecisionTreeClassifier, DecisionTreeRegressor


@pytest.fixture(scope="module")
def clf_data():
    rng = np.random.default_rng(0)
    X = rng.normal(size=(300, 4))
    y = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    return X, y


@pytest.fixture(scope="module")
def reg_data():
    rng = np.random.default_rng(1)
    X = rng.normal(size=(300, 3))
    y = X @ np.array([1.0, -2.0, 0.5]) + 0.1 * rng.normal(size=300)
    return X, y


CLASSIFIERS = [
    lambda: DecisionTreeClassifier(max_depth=4),
    lambda: RandomForestClassifier(n_estimators=5, max_depth=4, seed=0),
    lambda: GradientBoostingClassifier(n_estimators=8, max_depth=2, seed=0),
    lambda: LogisticRegression(),
    lambda: NeuralNetworkClassifier(hidden_sizes=(8,), epochs=5, seed=0),
]

REGRESSORS = [
    lambda: DecisionTreeRegressor(max_depth=4),
    lambda: RandomForestRegressor(n_estimators=5, max_depth=4, seed=0),
    lambda: GradientBoostingRegressor(n_estimators=8, max_depth=2, seed=0),
    lambda: LinearRegression(),
]


class TestRoundTrips:
    @pytest.mark.parametrize("factory", CLASSIFIERS)
    def test_classifier_predictions_preserved(self, factory, clf_data):
        X, y = clf_data
        model = factory().fit(X, y)
        restored = model_from_dict(model_to_dict(model))
        assert np.array_equal(restored.predict(X), model.predict(X))
        assert np.allclose(restored.predict_proba(X), model.predict_proba(X))

    @pytest.mark.parametrize("factory", REGRESSORS)
    def test_regressor_predictions_preserved(self, factory, reg_data):
        X, y = reg_data
        model = factory().fit(X, y)
        restored = model_from_dict(model_to_dict(model))
        assert np.allclose(restored.predict(X), model.predict(X))

    def test_save_and_load_file(self, tmp_path, clf_data):
        X, y = clf_data
        model = RandomForestClassifier(n_estimators=3, seed=0).fit(X, y)
        path = tmp_path / "model.json"
        save_model(model, path)
        restored = load_model(path)
        assert np.array_equal(restored.predict(X), model.predict(X))

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            model_to_dict(object())

    def test_unknown_kind_rejected(self):
        with pytest.raises(TypeError):
            model_from_dict({"kind": "Bogus", "payload": {}})


class TestTableModelRoundTrip:
    def test_ordinal_table_model(self, german_bundle, tmp_path):
        model = fit_table_model(
            "random_forest",
            german_bundle.table,
            german_bundle.feature_names,
            german_bundle.label,
            seed=0,
            n_estimators=5,
            max_depth=5,
        )
        path = tmp_path / "tm.json"
        save_model(model, path)
        restored = load_model(path)
        table = german_bundle.table
        assert np.array_equal(
            restored.predict_codes(table), model.predict_codes(table)
        )
        assert restored.outcome_domain_ == model.outcome_domain_

    def test_onehot_table_model(self, german_bundle, tmp_path):
        model = fit_table_model(
            "logistic",
            german_bundle.table,
            german_bundle.feature_names,
            german_bundle.label,
        )
        path = tmp_path / "tm.json"
        save_model(model, path)
        restored = load_model(path)
        table = german_bundle.table
        assert np.allclose(
            restored.predict_proba(table), model.predict_proba(table)
        )

    def test_restored_model_drives_lewis(self, german_bundle, tmp_path):
        from repro import Lewis, train_test_split

        train, test = train_test_split(german_bundle.table, seed=0)
        model = fit_table_model(
            "random_forest", train, german_bundle.feature_names,
            german_bundle.label, seed=0, n_estimators=5,
        )
        path = tmp_path / "tm.json"
        save_model(model, path)
        restored = load_model(path)
        a = Lewis(model, data=test, graph=german_bundle.graph, positive_outcome="good")
        b = Lewis(restored, data=test, graph=german_bundle.graph, positive_outcome="good")
        assert np.array_equal(a.positive, b.positive)
