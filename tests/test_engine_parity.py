"""Property tests: batched engine queries equal the scalar path exactly.

The vectorized :class:`ContingencyEngine` powers `scores_batch`,
`adjusted_probabilities`, `bounds_batch` and the batched global
explanation builder.  Across random tables, causal diagrams and contexts
every batched result must agree with the looped scalar computation to
within 1e-12 (they share the same integer counts, so in practice the
difference is a few ulps of summation reordering at most).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.causal.graph import CausalDiagram
from repro.core.bounds import BoundsEstimator
from repro.core.explanations import build_global_explanation
from repro.core.scores import ScoreEstimator
from repro.data.table import Table
from repro.estimation.adjustment import adjusted_probabilities, adjusted_probability
from repro.estimation.probability import FrequencyEstimator

TOL = 1e-12

NAMES = ("W", "X", "Y", "Z")

DIAGRAMS = (
    None,
    CausalDiagram([("W", "X"), ("W", "Y"), ("X", "Y")], nodes=NAMES),
    CausalDiagram([("Z", "X"), ("Z", "W"), ("X", "W")], nodes=NAMES),
    CausalDiagram([("W", "X"), ("X", "Y"), ("Y", "Z")], nodes=NAMES),
)


def make_table(seed: int, n_rows: int, cards: tuple[int, ...]) -> Table:
    rng = np.random.default_rng(seed)
    codes = {
        name: rng.integers(0, card, size=n_rows)
        for name, card in zip(NAMES, cards)
    }
    domains = {name: list(range(card)) for name, card in zip(NAMES, cards)}
    return Table.from_codes(codes, domains)


def make_estimator(
    seed: int, n_rows: int, cards: tuple[int, ...], diagram_index: int
) -> ScoreEstimator:
    table = make_table(seed, n_rows, cards)
    rng = np.random.default_rng(seed + 1)
    weights = rng.normal(size=len(NAMES))
    score = sum(w * table.codes(n) for w, n in zip(weights, NAMES))
    positive = score >= np.median(score)
    return ScoreEstimator(table, positive, diagram=DIAGRAMS[diagram_index])


scenario = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=20, max_value=150),  # rows
    st.tuples(*[st.integers(min_value=2, max_value=4) for _ in NAMES]),  # cards
    st.integers(min_value=0, max_value=len(DIAGRAMS) - 1),  # diagram
    st.integers(min_value=0, max_value=2),  # context size
)


def draw_context(seed: int, cards: tuple[int, ...], size: int) -> dict[str, int]:
    """A context over the trailing attributes, guaranteed in-domain."""
    rng = np.random.default_rng(seed + 7)
    names = list(NAMES[-size:]) if size else []
    return {n: int(rng.integers(0, cards[NAMES.index(n)])) for n in names}


def all_pairs(card: int) -> list[tuple[int, int]]:
    return [(hi, lo) for hi in range(card) for lo in range(hi)]


@given(scenario)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_scores_batch_equals_scalar_loop(params):
    seed, n_rows, cards, diagram_index, context_size = params
    estimator = make_estimator(seed, n_rows, cards, diagram_index)
    context = draw_context(seed, cards, context_size)
    contrasts = []
    for name in NAMES:
        if name in context:
            continue
        for hi, lo in all_pairs(cards[NAMES.index(name)]):
            contrasts.append(({name: hi}, {name: lo}))
    # A joint (multi-attribute) contrast exercises the grouped dispatch.
    free = [n for n in NAMES if n not in context]
    if len(free) >= 2 and cards[NAMES.index(free[0])] > 1 and cards[NAMES.index(free[1])] > 1:
        contrasts.append(
            (
                {free[0]: 1, free[1]: 1},
                {free[0]: 0, free[1]: 0},
            )
        )
    try:
        batched = estimator.scores_batch(contrasts, context)
    except Exception as exc:  # scalar loop must fail identically
        with pytest.raises(type(exc)):
            for treatment, baseline in contrasts:
                estimator.scores(treatment, baseline, context)
        return
    for (treatment, baseline), triple in zip(contrasts, batched):
        scalar = estimator.scores(treatment, baseline, context)
        assert abs(triple.necessity - scalar.necessity) <= TOL
        assert abs(triple.sufficiency - scalar.sufficiency) <= TOL
        assert (
            abs(triple.necessity_sufficiency - scalar.necessity_sufficiency)
            <= TOL
        )


@given(scenario)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_adjusted_probabilities_equal_scalar(params):
    seed, n_rows, cards, _diagram_index, context_size = params
    table = make_table(seed, n_rows, cards)
    estimator = FrequencyEstimator(table)
    context = draw_context(seed, cards, context_size)
    adjustment = [n for n in ("Y", "Z") if n not in context]
    treatments = [{"X": code} for code in range(cards[1])]
    weight_conditions = [{"W": code % cards[0]} for code in range(cards[1])]
    event = {"W": 0}
    try:
        batch = adjusted_probabilities(
            estimator, event, treatments, adjustment, weight_conditions, context
        )
    except Exception as exc:
        with pytest.raises(type(exc)):
            for treatment, weight in zip(treatments, weight_conditions):
                adjusted_probability(
                    estimator, event, treatment, adjustment, weight, context
                )
        return
    for value, treatment, weight in zip(batch, treatments, weight_conditions):
        scalar = adjusted_probability(
            estimator, event, treatment, adjustment, weight, context
        )
        assert abs(float(value) - scalar) <= TOL


@given(scenario)
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_probabilities_batch_equals_scalar(params):
    seed, n_rows, cards, _diagram_index, _context_size = params
    table = make_table(seed, n_rows, cards)
    estimator = FrequencyEstimator(table)
    engine = estimator.engine
    events, givens = [], []
    for x in range(cards[1]):
        events.append({"W": x % cards[0]})
        givens.append({"X": x})
        events.append({"W": 0, "Y": 0})
        givens.append({"X": x, "Z": 0})
        events.append({"X": x})  # overlaps its own condition
        givens.append({"X": x})
        events.append({})
        givens.append({"X": x})
    batch = engine.probabilities(events, givens, default=0.25)
    for value, event, given in zip(batch, events, givens):
        scalar = estimator.probability_or_default(event, given, default=0.25)
        assert abs(float(value) - scalar) <= TOL


@given(scenario)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_bounds_batch_equals_scalar(params):
    seed, n_rows, cards, diagram_index, context_size = params
    estimator = make_estimator(seed, n_rows, cards, diagram_index)
    context = draw_context(seed, cards, context_size)
    bounds = BoundsEstimator(estimator)
    contrasts = []
    for name in NAMES:
        if name in context:
            continue
        for hi, lo in all_pairs(cards[NAMES.index(name)]):
            contrasts.append(({name: hi}, {name: lo}))
    try:
        batch = bounds.bounds_batch(contrasts, context)
    except Exception as exc:
        with pytest.raises(type(exc)):
            for treatment, baseline in contrasts:
                bounds.bounds(treatment, baseline, context)
        return
    for (treatment, baseline), got in zip(contrasts, batch):
        # The scalar path routes through bounds_batch with one contrast;
        # equality must hold to the last bit.
        one = bounds.bounds_batch([(treatment, baseline)], context)[0]
        for kind in ("necessity", "sufficiency", "necessity_sufficiency"):
            lo_a, hi_a = getattr(got, kind)
            lo_b, hi_b = getattr(one, kind)
            assert abs(lo_a - lo_b) <= TOL
            assert abs(hi_a - hi_b) <= TOL


@given(scenario)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_global_explanation_batched_equals_scalar(params):
    seed, n_rows, cards, diagram_index, context_size = params
    estimator = make_estimator(seed, n_rows, cards, diagram_index)
    context = draw_context(seed, cards, context_size)
    kwargs = dict(
        context=context or None, max_pairs_per_attribute=4
    )
    try:
        fast = build_global_explanation(estimator, NAMES, batched=True, **kwargs)
    except Exception as exc:
        with pytest.raises(type(exc)):
            build_global_explanation(estimator, NAMES, batched=False, **kwargs)
        return
    slow = build_global_explanation(estimator, NAMES, batched=False, **kwargs)
    assert len(fast.attribute_scores) == len(slow.attribute_scores)
    for a, b in zip(fast.attribute_scores, slow.attribute_scores):
        assert a.attribute == b.attribute
        assert abs(a.necessity - b.necessity) <= TOL
        assert abs(a.sufficiency - b.sufficiency) <= TOL
        assert abs(a.necessity_sufficiency - b.necessity_sufficiency) <= TOL
        assert a.best_pair_necessity == b.best_pair_necessity
        assert a.best_pair_sufficiency == b.best_pair_sufficiency
        assert a.best_pair_nesuf == b.best_pair_nesuf


def test_weight_condition_overlapping_adjustment_matches_scalar():
    """A weight condition pinning an adjustment column must not be dropped.

    Regression: the vectorized path must defer to the sparse loop when
    ``weight_conditions`` intersects the adjustment set, otherwise the
    mixing weights marginalise over the pinned column.
    """
    table = make_table(11, 300, (2, 3, 3, 2))
    estimator = FrequencyEstimator(table)
    batch = adjusted_probabilities(
        estimator,
        {"W": 1},
        [{"X": 1}, {"X": 2}],
        adjustment=["Y", "Z"],
        weight_conditions=[{"Z": 0}, {"Z": 1}],
    )
    for value, treatment, weight in zip(batch, [{"X": 1}, {"X": 2}], [{"Z": 0}, {"Z": 1}]):
        # The scalar reference: weights grouped over (Y, Z) *given* the pin.
        weights = estimator.group_probabilities(["Y", "Z"], weight)
        expected = 0.0
        for (y, z), w in weights.items():
            inner = estimator.probability_or_default(
                {"W": 1}, {"Y": y, "Z": z, "X": treatment["X"]},
                default=estimator.probability_or_default({"W": 1}, treatment, 0.0),
            )
            expected += w * inner
        assert abs(float(value) - expected) <= TOL


def test_group_probabilities_matches_mask_computation():
    """The tensor-backed grouped weights equal the historical mask+unique path."""
    table = make_table(3, 200, (2, 3, 4, 2))
    estimator = FrequencyEstimator(table)
    mask = (table.codes("X") == 1) & (table.codes("Z") == 0)
    matrix = table.codes_matrix(["Y", "W"])[mask]
    uniques, counts = np.unique(matrix, axis=0, return_counts=True)
    expected = {
        tuple(int(c) for c in combo): int(count) / int(mask.sum())
        for combo, count in zip(uniques, counts)
    }
    got = estimator.group_probabilities(["Y", "W"], {"X": 1, "Z": 0})
    assert got.keys() == expected.keys()
    for key, val in expected.items():
        assert got[key] == pytest.approx(val, abs=TOL)


def test_out_of_domain_codes_count_zero():
    """Codes outside a column's domain match no rows (not an index error)."""
    table = make_table(5, 60, (2, 2, 3, 2))
    estimator = FrequencyEstimator(table)
    assert estimator.count({"X": 99}) == 0
    assert estimator.probability_or_default({"W": 1}, {"X": 99}, default=0.5) == 0.5
