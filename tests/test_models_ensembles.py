"""Unit tests for random forests and gradient boosting."""

import numpy as np
import pytest

from repro.models.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.models.forest import RandomForestClassifier, RandomForestRegressor


class TestRandomForestClassifier:
    def test_accuracy_on_separable_data(self, linear_data):
        X, y, _ = linear_data
        forest = RandomForestClassifier(n_estimators=15, max_depth=6, seed=0).fit(X, y)
        assert forest.score(X, y) > 0.9

    def test_predict_proba_valid(self, linear_data):
        X, y, _ = linear_data
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        proba = forest.predict_proba(X[:30])
        assert proba.min() >= 0 and proba.max() <= 1
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_deterministic_given_seed(self, linear_data):
        X, y, _ = linear_data
        a = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=5, seed=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_seeds_change_predictions_probabilistically(self, linear_data):
        X, y, _ = linear_data
        a = RandomForestClassifier(n_estimators=5, max_depth=3, seed=1).fit(X, y)
        b = RandomForestClassifier(n_estimators=5, max_depth=3, seed=2).fit(X, y)
        assert not np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_feature_importances_normalised(self, linear_data):
        X, y, _ = linear_data
        forest = RandomForestClassifier(n_estimators=10, seed=0).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)
        assert (forest.feature_importances_ >= 0).all()

    def test_no_bootstrap_mode(self, linear_data):
        X, y, _ = linear_data
        forest = RandomForestClassifier(n_estimators=5, bootstrap=False, seed=0).fit(X, y)
        assert forest.score(X, y) > 0.85

    def test_max_features_fraction(self, linear_data):
        X, y, _ = linear_data
        forest = RandomForestClassifier(
            n_estimators=5, max_features=0.5, seed=0
        ).fit(X, y)
        assert forest.score(X, y) > 0.7

    def test_string_labels_roundtrip(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = np.where(X[:, 0] > 0, "pos", "neg")
        forest = RandomForestClassifier(n_estimators=8, seed=0).fit(X, y)
        assert set(forest.predict(X)) <= {"pos", "neg"}


class TestRandomForestRegressor:
    def test_fits_linear_trend(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(-1, 1, size=(400, 2))
        y = 3 * X[:, 0] - X[:, 1]
        forest = RandomForestRegressor(n_estimators=15, max_depth=8, seed=0).fit(X, y)
        assert forest.score(X, y) > 0.85

    def test_prediction_within_target_range(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 2))
        y = rng.uniform(0, 1, size=200)
        forest = RandomForestRegressor(n_estimators=10, seed=0).fit(X, y)
        preds = forest.predict(X)
        assert preds.min() >= 0.0 and preds.max() <= 1.0

    def test_averaging_smooths_single_tree(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(0, 1, size=(300, 1))
        y = np.sin(5 * X[:, 0]) + rng.normal(scale=0.3, size=300)
        lone = RandomForestRegressor(n_estimators=1, seed=0).fit(X, y)
        many = RandomForestRegressor(n_estimators=25, seed=0).fit(X, y)
        grid = np.linspace(0, 1, 50).reshape(-1, 1)
        truth = np.sin(5 * grid[:, 0])
        err_lone = np.mean((lone.predict(grid) - truth) ** 2)
        err_many = np.mean((many.predict(grid) - truth) ** 2)
        assert err_many <= err_lone


class TestGradientBoosting:
    def test_classifier_beats_chance(self, linear_data):
        X, y, _ = linear_data
        gbm = GradientBoostingClassifier(n_estimators=30, max_depth=2, seed=0).fit(X, y)
        assert gbm.score(X, y) > 0.85

    def test_classifier_proba_valid(self, linear_data):
        X, y, _ = linear_data
        gbm = GradientBoostingClassifier(n_estimators=10, seed=0).fit(X, y)
        proba = gbm.predict_proba(X[:10])
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert (proba >= 0).all()

    def test_more_rounds_reduce_training_loss(self, linear_data):
        X, y, _ = linear_data
        few = GradientBoostingClassifier(n_estimators=3, seed=0).fit(X, y)
        many = GradientBoostingClassifier(n_estimators=40, seed=0).fit(X, y)
        assert many.score(X, y) >= few.score(X, y)

    def test_multiclass_one_vs_rest(self):
        rng = np.random.default_rng(4)
        X = rng.normal(size=(300, 2))
        y = np.digitize(X[:, 0], [-0.5, 0.5])
        gbm = GradientBoostingClassifier(n_estimators=25, max_depth=2, seed=0).fit(X, y)
        assert gbm.score(X, y) > 0.8
        assert gbm.predict_proba(X).shape == (300, 3)

    def test_subsample_mode(self, linear_data):
        X, y, _ = linear_data
        gbm = GradientBoostingClassifier(
            n_estimators=15, subsample=0.5, seed=0
        ).fit(X, y)
        assert gbm.score(X, y) > 0.8

    def test_regressor_fits_quadratic(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(-2, 2, size=(400, 1))
        y = X[:, 0] ** 2
        gbm = GradientBoostingRegressor(n_estimators=60, max_depth=3, seed=0).fit(X, y)
        assert gbm.score(X, y) > 0.95

    def test_regressor_base_score_is_mean(self):
        X = np.zeros((10, 1))
        y = np.full(10, 7.0)
        gbm = GradientBoostingRegressor(n_estimators=2, seed=0).fit(X, y)
        assert gbm.base_score_ == pytest.approx(7.0)
        assert np.allclose(gbm.predict(X), 7.0, atol=1e-6)

    def test_learning_rate_zero_predicts_prior(self, linear_data):
        X, y, _ = linear_data
        gbm = GradientBoostingClassifier(
            n_estimators=3, learning_rate=0.0, seed=0
        ).fit(X, y)
        proba = gbm.predict_proba(X)[:, 1]
        assert np.allclose(proba, y.mean(), atol=1e-6)
