"""Unit tests for linear models, the MLP, and metrics."""

import numpy as np
import pytest

from repro.models import metrics
from repro.models.linear import LinearRegression, LogisticRegression
from repro.models.neural import NeuralNetworkClassifier


class TestLinearRegression:
    def test_recovers_exact_coefficients(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        w = np.array([2.0, -1.0, 0.5])
        y = X @ w + 4.0
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, w, atol=1e-8)
        assert model.intercept_ == pytest.approx(4.0)

    def test_ridge_shrinks_coefficients(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 2))
        y = X @ np.array([3.0, 3.0]) + rng.normal(size=100) * 0.1
        plain = LinearRegression(l2=0.0).fit(X, y)
        ridge = LinearRegression(l2=100.0).fit(X, y)
        assert np.abs(ridge.coef_).sum() < np.abs(plain.coef_).sum()

    def test_intercept_not_penalised(self):
        X = np.zeros((50, 1))
        y = np.full(50, 9.0)
        model = LinearRegression(l2=1000.0).fit(X, y)
        assert model.intercept_ == pytest.approx(9.0)

    def test_r2_perfect_fit(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = 2 * X[:, 0] + 1
        assert LinearRegression().fit(X, y).score(X, y) == pytest.approx(1.0)


class TestLogisticRegression:
    def test_separates_linear_data(self, linear_data):
        X, y, _ = linear_data
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.9

    def test_decision_function_sign_matches_prediction(self, linear_data):
        X, y, _ = linear_data
        model = LogisticRegression().fit(X, y)
        scores = model.decision_function(X)
        preds = model.predict(X)
        assert np.array_equal(preds == model.classes_[1], scores > 0)

    def test_proba_monotone_in_score(self, linear_data):
        X, y, _ = linear_data
        model = LogisticRegression().fit(X, y)
        scores = model.decision_function(X)
        proba = model.predict_proba(X)[:, 1]
        order = np.argsort(scores)
        assert (np.diff(proba[order]) >= -1e-12).all()

    def test_coefficient_direction(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(500, 1))
        y = (X[:, 0] > 0).astype(int)
        model = LogisticRegression().fit(X, y)
        assert model.coef_[0][0] > 0

    def test_multiclass_one_vs_rest(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(400, 2))
        y = np.digitize(X[:, 0], [-0.6, 0.6])
        model = LogisticRegression().fit(X, y)
        assert model.score(X, y) > 0.85
        assert model.predict_proba(X).shape == (400, 3)

    def test_single_class_rejected(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.zeros((5, 1)), np.zeros(5))


class TestNeuralNetwork:
    def test_learns_xor(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 2, size=(600, 2)).astype(float)
        y = (X[:, 0].astype(int) ^ X[:, 1].astype(int))
        net = NeuralNetworkClassifier(
            hidden_sizes=(16,), epochs=80, learning_rate=5e-3, seed=0
        ).fit(X, y)
        assert net.score(X, y) > 0.95

    def test_proba_normalised(self, linear_data):
        X, y, _ = linear_data
        net = NeuralNetworkClassifier(hidden_sizes=(8,), epochs=10, seed=0).fit(X, y)
        proba = net.predict_proba(X[:20])
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_deterministic_given_seed(self, linear_data):
        X, y, _ = linear_data
        a = NeuralNetworkClassifier(hidden_sizes=(8,), epochs=5, seed=4).fit(X, y)
        b = NeuralNetworkClassifier(hidden_sizes=(8,), epochs=5, seed=4).fit(X, y)
        assert np.allclose(a.predict_proba(X), b.predict_proba(X))

    def test_constant_feature_handled(self):
        X = np.column_stack([np.ones(100), np.linspace(-1, 1, 100)])
        y = (X[:, 1] > 0).astype(int)
        net = NeuralNetworkClassifier(
            hidden_sizes=(8,), epochs=150, learning_rate=1e-2, seed=0
        ).fit(X, y)
        assert net.score(X, y) > 0.9


class TestMetrics:
    def test_accuracy(self):
        assert metrics.accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_accuracy_empty_raises(self):
        with pytest.raises(ValueError):
            metrics.accuracy([], [])

    def test_rmse(self):
        assert metrics.rmse([0.0, 0.0], [3.0, 4.0]) == pytest.approx(np.sqrt(12.5))

    def test_log_loss_perfect(self):
        proba = np.array([[0.0, 1.0], [1.0, 0.0]])
        assert metrics.log_loss([1, 0], proba) < 1e-10

    def test_log_loss_uniform(self):
        proba = np.full((4, 2), 0.5)
        assert metrics.log_loss([0, 1, 0, 1], proba) == pytest.approx(np.log(2))

    def test_roc_auc_perfect(self):
        assert metrics.roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_roc_auc_random(self):
        assert metrics.roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_roc_auc_reversed(self):
        assert metrics.roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_roc_auc_single_class_raises(self):
        with pytest.raises(ValueError):
            metrics.roc_auc([1, 1], [0.5, 0.6])

    def test_confusion_matrix(self):
        cm = metrics.confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert cm.tolist() == [[1, 1], [0, 2]]

    def test_confusion_matrix_explicit_labels(self):
        cm = metrics.confusion_matrix(["a"], ["a"], labels=["a", "b"])
        assert cm.shape == (2, 2)
        assert cm[0, 0] == 1
