"""Tests for Pearl-three-step ground-truth scores."""

import numpy as np
import pytest

from repro.causal.ground_truth import GroundTruthScores
from repro.utils.exceptions import EstimationError


@pytest.fixture(scope="module")
def truth(toy_scm):
    """Ground truth for the deterministic algorithm f = 1{X + Z >= 2}."""
    return GroundTruthScores(
        toy_scm,
        predict=lambda t: (t.codes("X") + t.codes("Z")) >= 2,
        positive=lambda o: np.asarray(o, dtype=bool),
        n_samples=30_000,
        seed=3,
    )


class TestGroundTruthScores:
    def test_factual_positive_matches_rule(self, truth):
        pop = truth.population
        expected = (pop.codes("X") + pop.codes("Z")) >= 2
        assert np.array_equal(truth.factual_positive, expected)

    def test_deterministic_rule_given_context(self, truth):
        # Units with Z=1, X=0 (negative): do(X=2) makes 3 >= 2 always.
        assert truth.sufficiency("X", 2, 0, {"Z": 1}) == 1.0
        # Units with Z=0, X=0: do(X=1) gives 1 < 2 — never sufficient.
        assert truth.sufficiency("X", 1, 0, {"Z": 0}) == 0.0

    def test_necessity_deterministic(self, truth):
        # Z=0, X=2 positives: dropping to 1 always flips.
        assert truth.necessity("X", 2, 1, {"Z": 0}) == 1.0
        # Z=1, X=2 positives: dropping to 1 keeps 2 >= 2.
        assert truth.necessity("X", 2, 1, {"Z": 1}) == 0.0

    def test_nesuf_equals_flip_fraction(self, truth):
        # Globally: flips for X: 2 vs 0 happen iff Z = 1... plus Z=0 units
        # where 2+0 >= 2 but 0+0 < 2 — i.e. always. NESUF(X: 2 vs 0) = 1.
        assert truth.necessity_sufficiency("X", 2, 0) == 1.0
        # X: 1 vs 0 flips only for Z=1 units.
        p_z1 = truth.population.codes("Z").mean()
        assert truth.necessity_sufficiency("X", 1, 0) == pytest.approx(p_z1, abs=0.02)

    def test_scores_dict(self, truth):
        out = truth.scores("X", 2, 0, {"Z": 1})
        assert set(out) == {"necessity", "sufficiency", "necessity_sufficiency"}

    def test_intervening_on_z_propagates_to_x(self, toy_scm):
        """do(Z) must flow through X (descendant response)."""
        truth = GroundTruthScores(
            toy_scm,
            predict=lambda t: (t.codes("X") + t.codes("Z")) >= 2,
            positive=lambda o: np.asarray(o, dtype=bool),
            n_samples=20_000,
            seed=4,
        )
        # Setting Z=1 raises X stochastically AND adds 1 directly: the
        # sufficiency of Z for negative units must be strictly positive.
        assert truth.sufficiency("Z", 1, 0) > 0.2

    def test_no_support_raises(self, truth):
        with pytest.raises(EstimationError):
            # X=2 combined with factual X=0 context is contradictory.
            truth.necessity("X", 2, 0, {"X": 0})

    def test_counterfactual_cache(self, truth):
        a = truth.counterfactual_positive("X", 1)
        b = truth.counterfactual_positive("X", 1)
        assert a is b

    def test_monotonicity_violation_zero_for_monotone(self, truth):
        assert truth.monotonicity_violation("X", 2, 0) == 0.0

    def test_monotonicity_violation_positive_for_nonmonotone(self, toy_scm):
        truth = GroundTruthScores(
            toy_scm,
            predict=lambda t: t.codes("X") == 1,  # up-then-down rule
            positive=lambda o: np.asarray(o, dtype=bool),
            n_samples=10_000,
            seed=5,
        )
        assert truth.monotonicity_violation("X", 2, 1) == 1.0
