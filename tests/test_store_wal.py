"""DeltaLog: durability, sequencing, torn tails, compaction, write-ahead."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.service.updates import TableDelta
from repro.store import DeltaLog, DurableSession
from repro.utils.exceptions import DomainError, StoreError


def delta(insert=(), delete=()):
    return TableDelta(insert=tuple(insert), delete=tuple(delete))


ROW = {"a": 1, "b": 0}


class TestDeltaLog:
    def test_append_assigns_sequence_and_survives_reopen(self, tmp_path):
        log = DeltaLog(tmp_path / "t.jsonl")
        assert log.append(delta(insert=[ROW])) == 1
        assert log.append(delta(delete=[3])) == 2
        log.close()

        reopened = DeltaLog(tmp_path / "t.jsonl")
        assert reopened.last_seq == 2
        records = reopened.replay()
        assert [seq for seq, _d in records] == [1, 2]
        assert records[0][1].insert == (ROW,)
        assert records[1][1].delete == (3,)
        assert reopened.replay(after=1) == records[1:]

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = tmp_path / "t.jsonl"
        log = DeltaLog(path)
        log.append(delta(insert=[ROW]))
        log.append(delta(delete=[0]))
        log.close()
        with open(path, "ab") as fh:
            fh.write(b'{"seq": 3, "insert": [], "del')  # crash mid-write

        recovered = DeltaLog(path)
        assert recovered.last_seq == 2
        assert len(recovered.replay()) == 2
        # the torn bytes are gone: a fresh append continues cleanly
        assert recovered.append(delta(delete=[1])) == 3
        assert len(DeltaLog(path).replay()) == 3

    def test_unterminated_final_line_is_torn_even_if_valid_json(self, tmp_path):
        """A complete-looking JSON record without its newline was never
        acknowledged (the newline is part of the fsynced write); parsing
        it would let the next append concatenate onto the same line."""
        path = tmp_path / "t.jsonl"
        log = DeltaLog(path)
        log.append(delta(insert=[ROW]))
        log.close()
        content = path.read_bytes()
        path.write_bytes(content + content[:-1])  # record 2 sans newline

        recovered = DeltaLog(path)
        assert recovered.last_seq == 1  # torn tail discarded
        assert recovered.append(delta(delete=[0])) == 2
        assert [seq for seq, _d in DeltaLog(path).replay()] == [1, 2]

    def test_non_json_values_rejected_before_acknowledgement(self, tmp_path):
        log = DeltaLog(tmp_path / "t.jsonl")
        assert log.append(delta(insert=[{"a": np.int64(1), "b": 0}])) == 1
        record = log.replay()[0][1]
        assert record.insert[0]["a"] == 1  # numpy collapsed to python int
        with pytest.raises(StoreError, match="JSON"):
            log.append(delta(insert=[{"a": object(), "b": 0}]))
        assert log.last_seq == 1  # the bad record was never assigned a seq

    def test_mid_log_corruption_refuses_replay(self, tmp_path):
        path = tmp_path / "t.jsonl"
        log = DeltaLog(path)
        log.append(delta(insert=[ROW]))
        log.append(delta(delete=[0]))
        log.close()
        lines = path.read_bytes().splitlines()
        lines[0] = lines[0][:-5] + b'bad"}'
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(StoreError, match="corrupt WAL record"):
            DeltaLog(path)

    def test_corrupt_terminated_final_record_refuses_recovery(self, tmp_path):
        """A newline-terminated record can never be a torn write, so a
        bad final record is corruption of acknowledged data — it must
        refuse recovery, not silently truncate."""
        path = tmp_path / "t.jsonl"
        log = DeltaLog(path)
        log.append(delta(insert=[ROW]))
        log.append(delta(delete=[0]))
        log.close()
        lines = path.read_bytes().splitlines()
        record = json.loads(lines[1])
        record["delete"] = [9]  # bit-flip in the LAST record, stale crc
        lines[1] = json.dumps(record).encode()
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(StoreError, match="corrupt WAL record"):
            DeltaLog(path)

    def test_bit_flip_in_payload_detected_by_crc(self, tmp_path):
        path = tmp_path / "t.jsonl"
        log = DeltaLog(path)
        log.append(delta(insert=[ROW]))
        log.append(delta(delete=[0]))
        log.close()
        lines = path.read_bytes().splitlines()
        record = json.loads(lines[0])
        record["delete"] = [7]  # silent mutation, stale crc
        lines[0] = json.dumps(record).encode()
        path.write_bytes(b"\n".join(lines) + b"\n")
        with pytest.raises(StoreError, match="corrupt WAL record"):
            DeltaLog(path).replay()

    def test_truncate_through_keeps_tail_and_sequence(self, tmp_path):
        path = tmp_path / "t.jsonl"
        log = DeltaLog(path)
        for i in range(4):
            log.append(delta(delete=[i]))
        assert log.truncate_through(2) == 2
        assert [seq for seq, _d in log.replay()] == [3, 4]
        # numbering continues from the in-memory high-water mark
        assert log.append(delta(delete=[9])) == 5

    def test_ensure_floor_restores_continuity_after_compaction(self, tmp_path):
        path = tmp_path / "t.jsonl"
        log = DeltaLog(path)
        for i in range(3):
            log.append(delta(delete=[i]))
        log.truncate_through(3)  # checkpoint covered everything
        log.close()

        # a new process reads the durable floor marker: the sequence
        # survives without the manifest's help, and ensure_floor is a
        # no-op confirmation rather than the only safety net
        fresh = DeltaLog(path)
        assert fresh.last_seq == 3
        fresh.ensure_floor(3)
        assert fresh.append(delta(delete=[0])) == 4

    def test_compacted_log_reports_cursor_geometry(self, tmp_path):
        # regression: before the durable floor marker, a *fresh* open of
        # a fully-compacted log forgot its history — cursor_valid(0)
        # answered True and first_live_seq restarted at 1, so a replica
        # could replay a hole without noticing.
        path = tmp_path / "t.jsonl"
        log = DeltaLog(path)
        for i in range(3):
            log.append(delta(delete=[i]))
        log.truncate_through(3)
        log.close()

        fresh = DeltaLog(path)
        assert fresh.cursor_valid(0) is False
        assert fresh.cursor_valid(3) is True
        assert fresh.first_live_seq == 4
        assert fresh.stats()["compacted_through"] == 3
        # old-format logs (no marker) keep their pre-marker behavior
        bare = tmp_path / "old.jsonl"
        old = DeltaLog(bare)
        old.append(delta(delete=[0]))
        old.close()
        reopened = DeltaLog(bare)
        assert reopened.cursor_valid(0) is True
        assert reopened.first_live_seq == 1

    def test_stats(self, tmp_path):
        log = DeltaLog(tmp_path / "t.jsonl")
        log.append(delta(insert=[ROW]))
        stats = log.stats()
        assert stats["last_seq"] == 1
        assert stats["records"] == 1
        assert stats["bytes"] > 0
        assert stats["fsync"] is True


def tiny_model(features: Table) -> np.ndarray:
    return (features.codes("a") + features.codes("b")) >= 2


@pytest.fixture()
def durable(tmp_path):
    rng = np.random.default_rng(5)
    n = 120
    table = Table.from_dict(
        {"a": rng.integers(0, 3, n).tolist(), "b": rng.integers(0, 3, n).tolist()},
        domains={"a": [0, 1, 2], "b": [0, 1, 2]},
    )
    lewis = Lewis(
        tiny_model,
        data=table,
        feature_names=["a", "b"],
        attributes=["a", "b"],
        infer_orderings=False,
    )
    session = DurableSession(lewis, DeltaLog(tmp_path / "wal.jsonl"))
    yield session
    session.close()


class TestDurableSession:
    def test_update_is_logged_before_applied(self, durable):
        response = durable.update({"insert": [{"a": 0, "b": 1}], "delete": [2]})
        assert response["result"]["wal_seq"] == 1
        records = durable.log.replay()
        assert len(records) == 1
        assert records[0][1].insert == ({"a": 0, "b": 1},)
        assert len(durable.lewis.data) == 120  # 1 in, 1 out

    def test_invalid_update_never_reaches_the_log(self, durable):
        with pytest.raises(DomainError):
            durable.update({"insert": [{"a": 99, "b": 0}]})
        with pytest.raises(IndexError):
            durable.update({"delete": [10_000]})
        assert durable.log.last_seq == 0
        assert durable.log.replay() == []

    def test_empty_delta_not_logged(self, durable):
        durable.update({"insert": [], "delete": []})
        assert durable.log.last_seq == 0

    def test_apply_logged_skips_the_log(self, durable):
        durable.apply_logged(TableDelta(insert=({"a": 0, "b": 0},)))
        assert durable.log.last_seq == 0
        assert len(durable.lewis.data) == 121

    def test_stats_include_wal(self, durable):
        assert durable.stats()["wal"]["path"].endswith("wal.jsonl")
