"""Unit tests for bounds (Prop 4.1), value-order inference, monotonicity."""

import numpy as np
import pytest

from repro.core.bounds import BoundsEstimator, ScoreBounds
from repro.core.monotonicity import empirical_monotonicity_violation
from repro.core.ordering import infer_value_order, order_table_attributes
from repro.core.scores import ScoreEstimator
from repro.data.table import Column, Table


@pytest.fixture(scope="module")
def bounded_setup(toy_scm):
    table = toy_scm.sample(20_000, seed=31).select(["Z", "X"])
    positive = (table.codes("X") + table.codes("Z")) >= 2
    est = ScoreEstimator(table, positive, diagram=toy_scm.diagram.subgraph(["Z", "X"]))
    return table, positive, est, BoundsEstimator(est)


class TestScoreBounds:
    def test_intervals_are_ordered_and_in_unit_range(self, bounded_setup):
        *_rest, bounds_est = bounded_setup
        b = bounds_est.bounds({"X": 2}, {"X": 0})
        for lo, hi in (b.necessity, b.sufficiency, b.necessity_sufficiency):
            assert 0.0 <= lo <= hi <= 1.0

    def test_point_estimates_inside_bounds_under_monotonicity(self, bounded_setup):
        _t, _p, est, bounds_est = bounded_setup
        for hi, lo in ((2, 0), (2, 1), (1, 0)):
            triple = est.scores({"X": hi}, {"X": lo})
            bounds = bounds_est.bounds({"X": hi}, {"X": lo})
            assert bounds.contains(
                triple.necessity,
                triple.sufficiency,
                triple.necessity_sufficiency,
                tol=0.03,
            )

    def test_context_bounds(self, bounded_setup):
        *_rest, bounds_est = bounded_setup
        b = bounds_est.bounds({"X": 2}, {"X": 0}, {"Z": 1})
        lo, hi = b.sufficiency
        # Given Z=1 the flip is certain, so the interval concentrates at 1.
        assert lo > 0.9

    def test_nesuf_lower_bound_is_causal_effect(self, bounded_setup):
        _t, _p, est, bounds_est = bounded_setup
        b = bounds_est.bounds({"X": 1}, {"X": 0})
        # NESUF lower bound = P(o|do(x)) - P(o|do(x')) = P(Z=1) here.
        assert b.necessity_sufficiency[0] == pytest.approx(0.5, abs=0.03)

    def test_contains_rejects_outside(self):
        b = ScoreBounds((0.2, 0.4), (0.0, 1.0), (0.0, 1.0))
        assert not b.contains(0.5, 0.5, 0.5)
        assert b.contains(0.3, 0.5, 0.5)


class TestOrderInference:
    def _table_and_predictor(self):
        """Attribute 'cat' where value 'b' is best, 'c' worst."""
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 3, size=1_500)
        table = Table(
            [Column.from_codes("cat", codes, ("a", "b", "c"), ordered=False)]
        )
        favourability = {0: 0.5, 1: 0.9, 2: 0.1}

        def predict(t):
            c = t.codes("cat")
            return rng.random(len(c)) < np.vectorize(favourability.get)(c)

        return table, predict

    def test_infer_value_order_ranks_by_positive_rate(self):
        table, predict = self._table_and_predictor()
        order = infer_value_order(predict, table, "cat", seed=0)
        assert order == ["c", "a", "b"]

    def test_order_table_attributes_only_touches_unordered(self):
        table, predict = self._table_and_predictor()
        ordered_col = Column.from_codes(
            "num", np.zeros(len(table), dtype=int), (0, 1), ordered=True
        )
        table = table.with_column(ordered_col)
        out = order_table_attributes(predict, table, seed=0)
        assert out.domain("num") == (0, 1)
        assert out.domain("cat") == ("c", "a", "b")
        assert out.column("cat").ordered

    def test_reordering_preserves_decoded_rows(self):
        table, predict = self._table_and_predictor()
        out = order_table_attributes(predict, table, seed=0)
        assert out.column("cat").decode() == table.column("cat").decode()

    def test_probe_subsampling(self):
        table, predict = self._table_and_predictor()
        order = infer_value_order(predict, table, "cat", max_probe_rows=200, seed=0)
        assert order[-1] == "b"  # best value still identified


class TestMonotonicityDiagnostics:
    def test_zero_for_monotone_rule(self):
        codes = np.repeat([0, 1, 2], 100)
        table = Table([Column.from_codes("x", codes, (0, 1, 2))])
        positive = codes >= 1
        assert empirical_monotonicity_violation(table, positive, "x") == 0.0

    def test_positive_for_nonmonotone_rule(self):
        codes = np.repeat([0, 1, 2], 100)
        table = Table([Column.from_codes("x", codes, (0, 1, 2))])
        positive = codes == 1  # up then down
        violation = empirical_monotonicity_violation(table, positive, "x")
        assert violation == pytest.approx(1.0)

    def test_context_restriction(self):
        x = np.tile([0, 1], 100)
        z = np.repeat([0, 1], 100)
        table = Table(
            [Column.from_codes("x", x, (0, 1)), Column.from_codes("z", z, (0, 1))]
        )
        positive = (x == 0) & (z == 0) | (x == 1) & (z == 1)
        assert empirical_monotonicity_violation(table, positive, "x", {"z": 1}) == 0.0
        assert empirical_monotonicity_violation(table, positive, "x", {"z": 0}) == 1.0

    def test_length_mismatch(self):
        table = Table([Column.from_codes("x", np.zeros(3, dtype=int), (0, 1))])
        with pytest.raises(ValueError):
            empirical_monotonicity_violation(table, np.ones(2, dtype=bool), "x")
