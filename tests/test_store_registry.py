"""Registry: lazy loading, per-tenant isolation, byte-budgeted eviction."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import fit_table_model
from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.service.cache import ResultCache
from repro.store import ArtifactStore, Registry, session_footprint
from repro.utils.exceptions import StoreError

NAMES = ("a", "b")


def make_lewis(seed: int, n: int = 120) -> Lewis:
    rng = np.random.default_rng(seed)
    rows = {
        "a": rng.integers(0, 3, n).tolist(),
        "b": rng.integers(0, 3, n).tolist(),
    }
    rows["y"] = [int(a + b >= 2) for a, b in zip(rows["a"], rows["b"])]
    table = Table.from_dict(
        rows, domains={"a": [0, 1, 2], "b": [0, 1, 2], "y": [0, 1]}
    )
    model = fit_table_model("logistic", table, list(NAMES), "y", seed=seed)
    return Lewis(
        model,
        data=table.select(list(NAMES)),
        attributes=list(NAMES),
        positive_outcome=1,
        infer_orderings=False,
    )


@pytest.fixture()
def registry(tmp_path):
    registry = Registry(tmp_path / "store")
    yield registry
    registry.close()


class TestRegistryBasics:
    def test_add_get_names(self, registry):
        registry.add("alpha", make_lewis(1))
        registry.add("beta", make_lewis(2))
        assert registry.names() == ["alpha", "beta"]
        assert "alpha" in registry
        session = registry.get("alpha")
        assert session.tenant == "alpha"
        assert session is registry.get("alpha")  # cached, not reloaded

    def test_duplicate_add_rejected(self, registry):
        registry.add("alpha", make_lewis(1))
        with pytest.raises(StoreError, match="already exists"):
            registry.add("alpha", make_lewis(2))

    def test_unknown_tenant_raises(self, registry):
        with pytest.raises(StoreError, match="unknown tenant"):
            registry.get("ghost")

    def test_lazy_load_from_cold_store(self, tmp_path):
        with Registry(tmp_path / "store") as first:
            first.add("alpha", make_lewis(1))
            answer = first.get("alpha").explain_global(max_pairs_per_attribute=3)
        with Registry(tmp_path / "store") as second:
            assert second.loaded() == []
            again = second.get("alpha").explain_global(max_pairs_per_attribute=3)
            assert second.loaded() == ["alpha"]
        assert again["result"] == answer["result"]

    def test_remove_drops_everything(self, registry):
        registry.add("alpha", make_lewis(1))
        assert registry.remove("alpha")
        assert registry.names() == []
        assert registry.loaded() == []
        with pytest.raises(StoreError, match="unknown tenant"):
            registry.get("alpha")

    def test_concurrent_first_access_loads_once(self, tmp_path):
        with Registry(tmp_path / "store") as warmup:
            warmup.add("alpha", make_lewis(1))
        registry = Registry(tmp_path / "store")
        sessions, errors = [], []

        def fetch():
            try:
                sessions.append(registry.get("alpha"))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=fetch) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len({id(s) for s in sessions}) == 1
        assert registry.stats()["loads"] == 1
        registry.close()


class TestEviction:
    def test_byte_budget_evicts_lru(self, tmp_path):
        registry = Registry(tmp_path / "store")
        registry.add("alpha", make_lewis(1))
        registry.add("beta", make_lewis(2))
        footprint = session_footprint(registry.get("alpha"))
        registry.close()

        # budget fits one session only
        tight = Registry(tmp_path / "store", max_bytes=int(footprint * 1.5))
        tight.get("alpha")
        tight.get("beta")  # evicts alpha
        assert tight.loaded() == ["beta"]
        # alpha still serves after transparent reload
        assert tight.get("alpha").explain_global()["result"]["ranking"]
        tight.close()

    def test_explicit_evict_keeps_disk_state(self, registry):
        registry.add("alpha", make_lewis(1))
        session = registry.get("alpha")
        session.update({"insert": [{"a": 0, "b": 1}]})
        assert registry.evict("alpha")
        assert registry.loaded() == []
        # the WAL made the update durable through the eviction
        assert len(registry.get("alpha").lewis.data) == 121

    def test_evicted_session_closed(self, registry):
        registry.add("alpha", make_lewis(1))
        session = registry.get("alpha")
        registry.evict("alpha")
        # a closed session still answers (inline dispatch) — eviction
        # can never turn an in-flight request into an error
        assert session.explain_global()["result"]["ranking"]

    def test_stale_reference_update_after_eviction_fails_loudly(self, registry):
        """Eviction seals the WAL: a late update through a stale session
        reference must error, never append into a log the tenant's next
        restored session owns."""
        registry.add("alpha", make_lewis(1))
        stale = registry.get("alpha")
        registry.evict("alpha")
        fresh = registry.get("alpha")  # new owner of the log file
        with pytest.raises(StoreError, match="sealed"):
            stale.update({"insert": [{"a": 0, "b": 0}]})
        # the real owner keeps working, and the log replays cleanly
        fresh.update({"insert": [{"a": 1, "b": 1}]})
        registry.evict("alpha")
        assert len(registry.get("alpha").lewis.data) == 121

    def test_oversized_tenant_stays_resident(self, tmp_path):
        """A tenant bigger than the whole budget must not be close-looped
        by its own insertion; it stays resident alone."""
        with Registry(tmp_path / "store") as setup:
            setup.add("alpha", make_lewis(1))
        tiny = Registry(tmp_path / "store", max_bytes=64)  # << any session
        session = tiny.get("alpha")
        assert tiny.loaded() == ["alpha"]
        assert tiny.get("alpha") is session  # same object, no reload
        assert session.update({"insert": [{"a": 0, "b": 0}]})["result"]["wal_seq"]
        tiny.close()


class TestCheckpointing:
    def test_snapshot_compacts_wal(self, registry):
        registry.add("alpha", make_lewis(1))
        session = registry.get("alpha")
        session.update({"insert": [{"a": 0, "b": 1}]})
        assert session.log.stats()["records"] == 1
        manifest = registry.snapshot("alpha")
        assert manifest["wal_seq"] == 1
        assert session.log.stats()["records"] == 0  # compacted

    def test_snapshot_of_unloaded_clean_tenant_is_a_noop(self, tmp_path):
        with Registry(tmp_path / "store") as first:
            first.add("alpha", make_lewis(1))
        registry = Registry(tmp_path / "store")
        manifest = registry.snapshot("alpha")
        assert registry.loaded() == []  # did not need to load
        assert manifest["snapshot_id"] == "00000001"
        registry.close()

    def test_snapshot_of_unloaded_dirty_tenant_loads_and_checkpoints(self, tmp_path):
        with Registry(tmp_path / "store") as first:
            first.add("alpha", make_lewis(1))
            first.get("alpha").update({"insert": [{"a": 2, "b": 2}]})
        registry = Registry(tmp_path / "store")
        manifest = registry.snapshot("alpha")
        assert manifest["snapshot_id"] == "00000002"
        assert manifest["session"]["n_rows"] == 121
        registry.close()

    def test_close_checkpoint_only_when_dirty(self, tmp_path):
        registry = Registry(tmp_path / "store")
        registry.add("alpha", make_lewis(1))
        registry.get("alpha")
        registry.close(checkpoint=True)  # clean: no new snapshot
        store = ArtifactStore(tmp_path / "store")
        assert store.snapshots("alpha") == ["00000001"]

        registry = Registry(tmp_path / "store")
        registry.get("alpha").update({"insert": [{"a": 1, "b": 1}]})
        registry.close(checkpoint=True)  # dirty: checkpointed
        assert store.snapshots("alpha") == ["00000001", "00000002"]


class TestTenantCacheIsolation:
    def test_same_content_tenants_never_cross_serve(self, tmp_path):
        """Two tenants with identical model + data share fingerprint and
        state token; the tenant-scoped cache key must still keep their
        entries apart."""
        cache = ResultCache()
        registry = Registry(tmp_path / "store", cache=cache)
        registry.add("alpha", make_lewis(7))
        registry.add("beta", make_lewis(7))  # same seed: identical content
        alpha, beta = registry.get("alpha"), registry.get("beta")
        assert alpha.fingerprint == beta.fingerprint
        assert alpha.state_token == beta.state_token

        first = alpha.explain_global(max_pairs_per_attribute=3)
        assert first["cached"] is False
        # identical query from the twin tenant: must MISS, not cross-serve
        second = beta.explain_global(max_pairs_per_attribute=3)
        assert second["cached"] is False
        # each tenant hits its own entry afterwards
        assert alpha.explain_global(max_pairs_per_attribute=3)["cached"] is True
        assert beta.explain_global(max_pairs_per_attribute=3)["cached"] is True
        registry.close()

    def test_update_purges_only_that_tenant(self, tmp_path):
        cache = ResultCache()
        registry = Registry(tmp_path / "store", cache=cache)
        registry.add("alpha", make_lewis(7))
        registry.add("beta", make_lewis(7))
        alpha, beta = registry.get("alpha"), registry.get("beta")
        alpha.explain_global(max_pairs_per_attribute=3)
        beta.explain_global(max_pairs_per_attribute=3)

        alpha.update({"insert": [{"a": 0, "b": 0}]})
        # beta's entry survived alpha's purge
        assert beta.explain_global(max_pairs_per_attribute=3)["cached"] is True
        assert alpha.explain_global(max_pairs_per_attribute=3)["cached"] is False
        registry.close()

    def test_ensure_background_upgrades_loaded_sessions(self, tmp_path):
        """Attaching a default (background=False) registry to an HTTP
        server must start every session's dispatch lane."""
        from repro.service.server import create_server

        registry = Registry(tmp_path / "store")  # background=False default
        registry.add("alpha", make_lewis(1))
        assert registry.get("alpha").stats()["scheduler"]["background"] is False
        server = create_server(registry=registry, port=0)
        assert registry.get("alpha").stats()["scheduler"]["background"] is True
        # lazily loaded sessions inherit the upgraded mode too
        registry.evict("alpha")
        assert registry.get("alpha").stats()["scheduler"]["background"] is True
        server.server_close()
        registry.close()

    def test_stats_shape(self, registry):
        registry.add("alpha", make_lewis(1))
        stats = registry.stats()
        assert stats["tenants"] == ["alpha"]
        assert stats["loaded"] == ["alpha"]
        assert set(stats["sessions"]) >= {"entries", "bytes", "evictions"}
        assert "store" in stats and "cache" in stats
