"""Property-based tests on the score invariants (hypothesis).

Random small SCMs and random monotone 'algorithms' are generated; the
paper's structural properties must hold on every draw:

* all scores live in [0, 1],
* Proposition 4.1 bounds contain the point estimates under monotonicity,
* Proposition 4.3's inequality relates the three scores,
* the ground-truth scores of a zero-effect attribute vanish (Prop 4.4).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.causal.equations import logistic_binary, root_categorical
from repro.causal.ground_truth import GroundTruthScores
from repro.causal.scm import StructuralCausalModel, StructuralEquation
from repro.core.bounds import BoundsEstimator
from repro.core.scores import ScoreEstimator


def build_random_setup(z_prob, x_weight, threshold, seed):
    """Z -> X -> f; f = 1{X + Z >= threshold} (monotone)."""
    eqs = [
        StructuralEquation("Z", (), (0, 1), root_categorical([1 - z_prob, z_prob])),
        StructuralEquation(
            "X", ("Z",), (0, 1), logistic_binary({"Z": x_weight}, bias=-x_weight / 2)
        ),
    ]
    scm = StructuralCausalModel(eqs)

    def predict(t):
        return (t.codes("X") + t.codes("Z")) >= threshold

    table = scm.sample(6_000, seed=seed)
    positive = np.asarray(predict(table), dtype=bool)
    estimator = ScoreEstimator(table, positive, diagram=scm.diagram)
    return scm, predict, estimator


scenario = st.tuples(
    st.floats(min_value=0.2, max_value=0.8),
    st.floats(min_value=0.5, max_value=3.0),
    st.integers(min_value=1, max_value=2),
    st.integers(min_value=0, max_value=10_000),
)


@given(scenario)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_scores_in_unit_interval(params):
    _scm, _predict, estimator = build_random_setup(*params)
    triple = estimator.scores({"X": 1}, {"X": 0})
    for value in triple.as_dict().values():
        assert 0.0 <= value <= 1.0


@given(scenario)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_bounds_contain_point_estimates(params):
    _scm, _predict, estimator = build_random_setup(*params)
    triple = estimator.scores({"X": 1}, {"X": 0})
    bounds = BoundsEstimator(estimator).bounds({"X": 1}, {"X": 0})
    assert bounds.contains(
        triple.necessity, triple.sufficiency, triple.necessity_sufficiency, tol=0.06
    )


@given(scenario)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_bounds_contain_ground_truth(params):
    scm, predict, estimator = build_random_setup(*params)
    truth = GroundTruthScores(
        scm, predict=predict, positive=lambda o: np.asarray(o, dtype=bool),
        n_samples=6_000, seed=1,
    )
    try:
        exact = truth.scores("X", 1, 0)
    except Exception:
        return  # degenerate draw without support
    bounds = BoundsEstimator(estimator).bounds({"X": 1}, {"X": 0})
    assert bounds.contains(
        exact["necessity"],
        exact["sufficiency"],
        exact["necessity_sufficiency"],
        tol=0.07,
    )


@given(scenario)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_proposition_43_inequality(params):
    _scm, _predict, estimator = build_random_setup(*params)
    freq = estimator.frequency_estimator
    nec = estimator.necessity({"X": 1}, {"X": 0})
    suf = estimator.sufficiency({"X": 1}, {"X": 0})
    nesuf = estimator.necessity_sufficiency({"X": 1}, {"X": 0})
    rhs = (
        freq.probability({"__outcome__": 1, "X": 1}) * nec
        + freq.probability({"__outcome__": 0, "X": 0}) * suf
    )
    # Binary X: equality up to sampling noise (Prop 4.3).
    assert nesuf == pytest.approx(rhs, abs=0.05)


@given(
    st.floats(min_value=0.2, max_value=0.8),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_proposition_44_zero_scores_for_noncause(w_prob, seed):
    """An attribute with no causal path to the outcome scores zero."""
    eqs = [
        StructuralEquation("W", (), (0, 1), root_categorical([1 - w_prob, w_prob])),
        StructuralEquation("X", (), (0, 1), root_categorical([0.5, 0.5])),
    ]
    scm = StructuralCausalModel(eqs)

    def predict(t):
        return t.codes("X") == 1

    truth = GroundTruthScores(
        scm, predict=predict, positive=lambda o: np.asarray(o, dtype=bool),
        n_samples=4_000, seed=seed,
    )
    assert truth.necessity_sufficiency("W", 1, 0) == 0.0
    assert truth.sufficiency("W", 1, 0) == 0.0
    assert truth.necessity("W", 1, 0) == 0.0
