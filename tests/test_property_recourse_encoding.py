"""Property-based tests for recourse soundness and encoding roundtrips."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.recourse import RecourseSolver
from repro.core.scores import ScoreEstimator
from repro.data.encoding import OneHotEncoder
from repro.data.splits import train_test_split
from repro.data.table import Column, Table
from repro.utils.exceptions import RecourseInfeasibleError


def _make_recourse_setup(card_a, card_b, threshold_frac, seed):
    """Two ordinal attributes, outcome = 1{a + b >= t}, dense support."""
    rng = np.random.default_rng(seed)
    n = 3_000
    a = rng.integers(0, card_a, n)
    b = rng.integers(0, card_b, n)
    t = max(1, int(threshold_frac * (card_a + card_b - 2)))
    table = Table(
        [
            Column.from_codes("a", a, tuple(range(card_a))),
            Column.from_codes("b", b, tuple(range(card_b))),
        ]
    )
    positive = (a + b) >= t
    if positive.all() or not positive.any():
        return None
    return table, positive, t


recourse_scenarios = st.tuples(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=2, max_value=4),
    st.floats(min_value=0.3, max_value=0.8),
    st.integers(min_value=0, max_value=10_000),
)


@given(recourse_scenarios)
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_recourse_solution_is_sound_and_minimal_cost_bounded(params):
    """Every returned recourse satisfies its own sufficiency claim and the
    action set never exceeds one change per actionable attribute."""
    setup = _make_recourse_setup(*params)
    if setup is None:
        return
    table, positive, _t = setup
    estimator = ScoreEstimator(table, positive)
    solver = RecourseSolver(estimator, ["a", "b"])
    row = {"a": 0, "b": 0}
    try:
        recourse = solver.solve(row, alpha=0.6)
    except RecourseInfeasibleError:
        return
    assert recourse.estimated_sufficiency >= 0.6 - 1e-9
    attributes = [action.attribute for action in recourse.actions]
    assert len(attributes) == len(set(attributes))
    assert recourse.total_cost >= 0
    for action in recourse.actions:
        assert action.new_value != action.current_value


@given(recourse_scenarios)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_recourse_cost_monotone_in_alpha(params):
    """A stricter sufficiency target never costs less."""
    setup = _make_recourse_setup(*params)
    if setup is None:
        return
    table, positive, _t = setup
    estimator = ScoreEstimator(table, positive)
    solver = RecourseSolver(estimator, ["a", "b"])
    row = {"a": 0, "b": 0}
    costs = []
    for alpha in (0.4, 0.7):
        try:
            costs.append(solver.solve(row, alpha=alpha).total_cost)
        except RecourseInfeasibleError:
            costs.append(np.inf)
    assert costs[1] >= costs[0] - 1e-9


table_strategy = st.integers(min_value=1, max_value=4).flatmap(
    lambda n_cols: st.tuples(
        st.just(n_cols),
        st.lists(
            st.integers(min_value=2, max_value=4), min_size=n_cols, max_size=n_cols
        ),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=10_000),
    )
)


@given(table_strategy)
@settings(max_examples=30, deadline=None)
def test_onehot_roundtrip_property(params):
    """Every row's one-hot block decodes back to its original code."""
    n_cols, cards, n_rows, seed = params
    rng = np.random.default_rng(seed)
    table = Table(
        [
            Column.from_codes(
                f"c{i}", rng.integers(0, card, n_rows), tuple(range(card))
            )
            for i, card in enumerate(cards)
        ]
    )
    enc = OneHotEncoder().fit(table)
    X = enc.transform(table)
    for i, card in enumerate(cards):
        block = X[:, enc.feature_slice(f"c{i}")]
        assert np.array_equal(np.argmax(block, axis=1), table.codes(f"c{i}"))
        assert np.array_equal(block.sum(axis=1), np.ones(n_rows))


@given(
    st.integers(min_value=10, max_value=200),
    st.floats(min_value=0.1, max_value=0.9),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=30, deadline=None)
def test_split_partition_property(n_rows, fraction, seed):
    """Train and test always partition the rows exactly."""
    rng = np.random.default_rng(seed)
    table = Table(
        [Column.from_codes("x", rng.integers(0, 3, n_rows), (0, 1, 2))]
    )
    train, test = train_test_split(table, test_fraction=fraction, seed=seed)
    assert len(train) + len(test) == n_rows
    assert len(test) == int(round(n_rows * fraction))
