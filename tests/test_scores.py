"""Unit tests for the ScoreEstimator (Proposition 4.2 estimators)."""

import numpy as np
import pytest

from repro.core.scores import ScoreEstimator, ScoreTriple
from repro.data.table import Table


@pytest.fixture(scope="module")
def monotone_setup(toy_scm):
    """Toy SCM sample + a monotone deterministic 'algorithm' over X, Z.

    f(i) = 1 iff X + Z >= 2 — monotone in both attributes.
    """
    table = toy_scm.sample(25_000, seed=21).select(["Z", "X"])
    positive = (table.codes("X") + table.codes("Z")) >= 2
    estimator = ScoreEstimator(table, positive, diagram=toy_scm.diagram.subgraph(["Z", "X"]))
    return table, positive, estimator


class TestConstruction:
    def test_length_mismatch_rejected(self, toy_table):
        with pytest.raises(ValueError):
            ScoreEstimator(toy_table.select(["Z", "X"]), np.ones(3, dtype=bool))

    def test_outcome_name_clash_rejected(self, toy_table):
        features = toy_table.select(["Z", "X"])
        with pytest.raises(ValueError):
            ScoreEstimator(
                features,
                np.ones(len(features), dtype=bool),
                outcome_name="X",
            )

    def test_table_gains_outcome_column(self, monotone_setup):
        _table, positive, estimator = monotone_setup
        assert "__outcome__" in estimator.table
        assert estimator.table.codes("__outcome__").sum() == positive.sum()

    def test_positive_rate(self, monotone_setup):
        _table, positive, estimator = monotone_setup
        assert estimator.positive_rate() == pytest.approx(positive.mean())


class TestScoreSanity:
    def test_scores_in_unit_interval(self, monotone_setup):
        _t, _p, est = monotone_setup
        for hi in (1, 2):
            for lo in range(hi):
                triple = est.scores({"X": hi}, {"X": lo})
                for v in triple.as_dict().values():
                    assert 0.0 <= v <= 1.0

    def test_identical_pair_rejected(self, monotone_setup):
        _t, _p, est = monotone_setup
        with pytest.raises(ValueError):
            est.scores({"X": 1}, {"X": 1})

    def test_mismatched_keys_rejected(self, monotone_setup):
        _t, _p, est = monotone_setup
        with pytest.raises(ValueError):
            est.necessity({"X": 1}, {"Z": 0})

    def test_empty_treatment_rejected(self, monotone_setup):
        _t, _p, est = monotone_setup
        with pytest.raises(ValueError):
            est.necessity({}, {})

    def test_larger_contrast_larger_nesuf(self, monotone_setup):
        _t, _p, est = monotone_setup
        small = est.necessity_sufficiency({"X": 1}, {"X": 0})
        large = est.necessity_sufficiency({"X": 2}, {"X": 0})
        assert large >= small - 0.02

    def test_scores_for_attribute_sets(self, monotone_setup):
        _t, _p, est = monotone_setup
        triple = est.scores({"X": 2, "Z": 1}, {"X": 0, "Z": 0})
        assert triple.necessity_sufficiency > 0.5  # joint flip is decisive

    def test_context_conditioning_changes_scores(self, monotone_setup):
        _t, _p, est = monotone_setup
        # Given Z=1, X>=1 suffices; given Z=0, X must be 2.
        suf_z1 = est.sufficiency({"X": 1}, {"X": 0}, {"Z": 1})
        suf_z0 = est.sufficiency({"X": 1}, {"X": 0}, {"Z": 0})
        assert suf_z1 > 0.9
        assert suf_z0 < 0.1


class TestDeterministicAlgorithmExactness:
    """For f(i) = 1{X + Z >= 2}, exact counterfactual scores are computable.

    Intervening on X does not change Z (Z is X's parent), so within
    context Z=z the counterfactual outcome under X <- x is 1{x + z >= 2}
    deterministically.
    """

    def test_sufficiency_exact_given_z(self, monotone_setup):
        _t, _p, est = monotone_setup
        # Units with Z=1, X=0 are negative; setting X=2 makes 3 >= 2: SUF=1.
        assert est.sufficiency({"X": 2}, {"X": 0}, {"Z": 1}) == pytest.approx(
            1.0, abs=0.02
        )
        # Setting X=1 given Z=1 gives 2 >= 2: also sufficient.
        assert est.sufficiency({"X": 1}, {"X": 0}, {"Z": 1}) == pytest.approx(
            1.0, abs=0.02
        )

    def test_necessity_exact_given_z(self, monotone_setup):
        _t, _p, est = monotone_setup
        # Units with Z=0, X=2 are positive; dropping X to 1 gives 1 < 2: NEC=1.
        assert est.necessity({"X": 2}, {"X": 1}, {"Z": 0}) == pytest.approx(
            1.0, abs=0.02
        )
        # Units with Z=1, X=2 positive; dropping to 1 keeps 2 >= 2: NEC=0.
        assert est.necessity({"X": 2}, {"X": 1}, {"Z": 1}) == pytest.approx(
            0.0, abs=0.02
        )

    def test_nesuf_exact_given_z(self, monotone_setup):
        _t, _p, est = monotone_setup
        # Given Z=0: outcome flips iff X moves across the X=2 boundary.
        assert est.necessity_sufficiency({"X": 2}, {"X": 1}, {"Z": 0}) == pytest.approx(
            1.0, abs=0.02
        )
        assert est.necessity_sufficiency({"X": 1}, {"X": 0}, {"Z": 0}) == pytest.approx(
            0.0, abs=0.02
        )


class TestNoConfoundingFallback:
    def test_without_diagram_uses_plain_conditionals(self, monotone_setup):
        table, positive, _est = monotone_setup
        est = ScoreEstimator(table, positive, diagram=None)
        # No-confounding sufficiency: (P(o|x,k) - P(o|x',k)) / P(o'|x',k).
        from repro.estimation.probability import FrequencyEstimator

        freq = FrequencyEstimator(est.table)
        p_hi = freq.probability({"__outcome__": 1}, {"X": 2})
        p_lo = freq.probability({"__outcome__": 1}, {"X": 0})
        expected = (p_hi - p_lo) / (1 - p_lo)
        assert est.sufficiency({"X": 2}, {"X": 0}) == pytest.approx(expected, abs=1e-9)

    def test_diagram_changes_global_scores_under_confounding(self, monotone_setup):
        table, positive, with_graph = monotone_setup
        without = ScoreEstimator(table, positive, diagram=None)
        # Z confounds X and O. For the contrast X: 1 vs 0 the adjusted
        # NESUF is P(Z=1) (only Z=1 units flip), while the unadjusted one
        # is P(o|X=1) - P(o|X=0) = P(Z=1|X=1), inflated because high X
        # co-occurs with high Z.
        adjusted = with_graph.necessity_sufficiency({"X": 1}, {"X": 0})
        unadjusted = without.necessity_sufficiency({"X": 1}, {"X": 0})
        p_z1 = table.codes("Z").mean()
        assert adjusted == pytest.approx(p_z1, abs=0.02)
        assert unadjusted > adjusted + 0.05


class TestLocalScores:
    def test_local_context_excludes_descendants(self, monotone_setup, toy_scm):
        table, positive, _ = monotone_setup
        est = ScoreEstimator(table, positive, diagram=toy_scm.diagram.subgraph(["Z", "X"]))
        ctx = est.local_context("Z", {"Z": 1, "X": 2})
        assert ctx == {}  # X is a descendant of Z
        ctx_x = est.local_context("X", {"Z": 1, "X": 2})
        assert ctx_x == {"Z": 1}

    def test_local_context_without_diagram_uses_all_others(self, monotone_setup):
        table, positive, _ = monotone_setup
        est = ScoreEstimator(table, positive, diagram=None)
        assert est.local_context("Z", {"Z": 1, "X": 2}) == {"X": 2}

    def test_local_scores_match_deterministic_rule(self, monotone_setup):
        _t, _p, est = monotone_setup
        # Given Z=1 fixed: raising X from 0 to 2 flips the outcome.
        triple = est.local_scores("X", 2, 0, {"Z": 1})
        assert triple.sufficiency > 0.9
        assert triple.necessity_sufficiency > 0.9

    def test_local_scores_identical_values_rejected(self, monotone_setup):
        _t, _p, est = monotone_setup
        with pytest.raises(ValueError):
            est.local_scores("X", 1, 1, {"Z": 0})

    def test_local_model_cached(self, monotone_setup):
        _t, _p, est = monotone_setup
        est.local_scores("X", 2, 0, {"Z": 1})
        first = est._local_models[("X", "Z")]
        est.local_scores("X", 1, 0, {"Z": 0})
        assert est._local_models[("X", "Z")] is first


class TestScoreTriple:
    def test_as_dict(self):
        t = ScoreTriple(0.1, 0.2, 0.3)
        assert t.as_dict() == {
            "necessity": 0.1,
            "sufficiency": 0.2,
            "necessity_sufficiency": 0.3,
        }
