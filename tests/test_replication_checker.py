"""Black-box consistency checker: admissible histories pass, damage doesn't."""

from __future__ import annotations

import threading

from repro.replication import HistoryRecorder, check_history


def write(client, replica, seq, version, token, ok=True):
    return {
        "op": "write", "client": client, "replica": replica, "ok": ok,
        "seq": seq, "version": version, "token": token,
    }


def read(client, replica, version, token=None, min_state=None, ok=True, t=0):
    return {
        "op": "read", "client": client, "replica": replica, "ok": ok,
        "version": version, "token": token, "min_state": min_state, "t": t,
    }


def finals(**replicas):
    return {
        name: {"state_token": tok, "table_version": ver, "last_seq": seq}
        for name, (tok, ver, seq) in replicas.items()
    }


class TestCleanHistories:
    def test_empty_history_passes(self):
        verdict = check_history([])
        assert verdict["ok"]
        assert verdict["violations"] == []
        assert verdict["serialization"] == []

    def test_serializable_history_passes_with_serialization(self):
        events = [
            write("c1", "leader", seq=1, version=1, token="t1"),
            write("c1", "leader", seq=2, version=2, token="t2"),
            read("c2", "follower", version=1, token="t1", t=2),
            read("c2", "follower", version=2, token="t2", t=3),
            read("c1", "follower", version=2, min_state="t2", t=4),
        ]
        verdict = check_history(
            events, finals=finals(leader=("t2", 2, 2), follower=("t2", 2, 2))
        )
        assert verdict["ok"], verdict["violations"]
        assert [s["seq"] for s in verdict["serialization"]] == [1, 2]
        # both version-2 reads assigned to the write that produced them
        assert verdict["serialization"][1]["reads_observing"] == 2
        assert verdict["stats"]["acked_writes"] == 2
        assert verdict["stats"]["max_acked_seq"] == 2

    def test_reads_of_initial_state_are_admissible(self):
        events = [read("c1", "follower", version=0, token="t0", t=0)]
        verdict = check_history(events, initial={"version": 0, "token": "t0"})
        assert verdict["ok"], verdict["violations"]

    def test_failed_operations_are_ignored(self):
        events = [
            write("c1", "leader", seq=None, version=None, token=None, ok=False),
            read("c1", "follower", version=None, ok=False),
        ]
        assert check_history(events)["ok"]


class TestViolations:
    def test_fork_two_tokens_for_one_version(self):
        events = [
            write("c1", "leader", seq=1, version=1, token="aaa"),
            read("c2", "follower", version=1, token="bbb", t=1),
        ]
        verdict = check_history(events)
        assert not verdict["ok"]
        assert any(v.startswith("fork:") for v in verdict["violations"])

    def test_duplicate_wal_seq_detected(self):
        events = [
            write("c1", "leader", seq=1, version=1, token="t1"),
            write("c2", "leader", seq=1, version=2, token="t2"),
        ]
        verdict = check_history(events)
        assert any(
            "share WAL seq" in v for v in verdict["violations"]
        ), verdict["violations"]

    def test_log_order_version_order_disagreement(self):
        events = [
            write("c1", "leader", seq=1, version=2, token="t2"),
            write("c1", "leader", seq=2, version=1, token="t1"),
        ]
        verdict = check_history(events)
        assert any(
            "log order and version order disagree" in v
            for v in verdict["violations"]
        )

    def test_non_monotonic_reads_on_one_replica(self):
        events = [
            write("w", "leader", seq=1, version=1, token="t1"),
            write("w", "leader", seq=2, version=2, token="t2"),
            read("c1", "follower", version=2, token="t2", t=2),
            read("c1", "follower", version=1, token="t1", t=3),
        ]
        verdict = check_history(events)
        assert any(
            v.startswith("non-monotonic reads:") for v in verdict["violations"]
        )

    def test_same_client_different_replicas_may_regress(self):
        """Monotonic reads are per (client, replica): switching replicas
        without a pin legitimately observes older state."""
        events = [
            write("w", "leader", seq=1, version=1, token="t1"),
            write("w", "leader", seq=2, version=2, token="t2"),
            read("c1", "follower-a", version=2, token="t2", t=2),
            read("c1", "follower-b", version=1, token="t1", t=3),
        ]
        assert check_history(events)["ok"]

    def test_stale_pinned_read(self):
        events = [
            write("c1", "leader", seq=1, version=1, token="t1"),
            write("c1", "leader", seq=2, version=2, token="t2"),
            read("c1", "follower", version=1, token="t1", min_state="t2", t=2),
        ]
        verdict = check_history(events)
        assert any(
            v.startswith("stale pinned read:") for v in verdict["violations"]
        )

    def test_unknown_pin_token_is_untestable_not_a_violation(self):
        events = [
            write("c1", "leader", seq=1, version=1, token="t1"),
            read("c1", "follower", version=1, token="t1",
                 min_state="never-observed", t=1),
        ]
        verdict = check_history(events)
        assert verdict["ok"]
        assert verdict["stats"]["unpinnable_reads"] == 1

    def test_diverged_finals(self):
        events = [write("c1", "leader", seq=1, version=1, token="t1")]
        verdict = check_history(
            events, finals=finals(leader=("t1", 1, 1), follower=("zzz", 1, 1))
        )
        assert any(
            v.startswith("diverged finals:") for v in verdict["violations"]
        )

    def test_lost_acked_write(self):
        events = [
            write("c1", "leader", seq=1, version=1, token="t1"),
            write("c1", "leader", seq=2, version=2, token="t2"),
        ]
        verdict = check_history(
            events, finals=finals(leader=("t2", 2, 2), follower=("t1", 1, 1))
        )
        assert any(
            v.startswith("lost acked write:") for v in verdict["violations"]
        )

    def test_phantom_read(self):
        events = [
            write("c1", "leader", seq=1, version=1, token="t1"),
            read("c2", "follower", version=7, token="t7", t=1),
        ]
        verdict = check_history(events)
        assert any(
            v.startswith("phantom read:") for v in verdict["violations"]
        )

    def test_acked_write_without_seq_is_uncheckable(self):
        events = [write("c1", "leader", seq=None, version=None, token=None)]
        verdict = check_history(events)
        assert any(
            "not checkable" in v for v in verdict["violations"]
        )


class TestHistoryRecorder:
    def test_events_are_stamped_in_arrival_order(self):
        recorder = HistoryRecorder()
        recorder.record_write("c1", "leader", True, seq=1, version=1, token="t")
        recorder.record_read("c1", "leader", True, version=1, token="t")
        events = recorder.events()
        assert [e["t"] for e in events] == [0, 1]
        assert events[0]["op"] == "write"
        assert events[1]["op"] == "read"
        # snapshots are copies: mutating them never corrupts the history
        events[0]["seq"] = 999
        assert recorder.events()[0]["seq"] == 1

    def test_concurrent_recording_assigns_unique_stamps(self):
        recorder = HistoryRecorder()

        def hammer(client):
            for i in range(50):
                recorder.record_read(client, "r", True, version=i)

        threads = [
            threading.Thread(target=hammer, args=(f"c{i}",)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stamps = [e["t"] for e in recorder.events()]
        assert sorted(stamps) == list(range(200))

    def test_recorded_history_round_trips_through_checker(self):
        recorder = HistoryRecorder()
        recorder.record_write("w", "leader", True, seq=1, version=1, token="t1")
        recorder.record_read("r", "follower", True, version=1, token="t1")
        verdict = check_history(
            recorder.events(), finals=finals(leader=("t1", 1, 1))
        )
        assert verdict["ok"], verdict["violations"]
