"""Cross-module integration tests: full pipelines on every dataset."""

import numpy as np
import pytest

from repro import (
    GroundTruthScores,
    Lewis,
    fit_table_model,
    load_dataset,
    train_test_split,
)
from repro.core.recourse import RecourseSolver
from repro.core.scores import ScoreEstimator
from repro.data.compas import compas_software_positive
from repro.utils.exceptions import RecourseInfeasibleError


class TestEndToEndPipelines:
    @pytest.mark.parametrize("name", ["german", "compas", "drug"])
    def test_full_pipeline_classification(self, name):
        bundle = load_dataset(name, n_rows=600, seed=0)
        train, test = train_test_split(bundle.table, seed=0)
        model = fit_table_model(
            "random_forest",
            train,
            bundle.feature_names,
            bundle.label,
            seed=0,
            n_estimators=10,
            max_depth=6,
        )
        lew = Lewis(
            model, data=test, graph=bundle.graph,
            positive_outcome=bundle.positive_label,
        )
        exp = lew.explain_global()
        assert len(exp.attribute_scores) == len(lew.attributes)
        assert all(
            0 <= s.necessity_sufficiency <= 1 for s in exp.attribute_scores
        )

    def test_adult_pipeline_subsampled(self):
        bundle = load_dataset("adult", n_rows=2_000, seed=0)
        train, test = train_test_split(bundle.table, seed=0)
        model = fit_table_model(
            "xgboost", train, bundle.feature_names, bundle.label, seed=0,
            n_estimators=20,
        )
        lew = Lewis(
            model, data=test, graph=bundle.graph,
            positive_outcome=bundle.positive_label,
        )
        ranking = lew.explain_global().ranking("necessity_sufficiency")
        # Strong causes of income must beat weak ones.
        assert ranking.index("marital") < ranking.index("country")

    def test_compas_software_pipeline(self):
        bundle = load_dataset("compas", n_rows=2_000, seed=0)
        features = bundle.table.select(bundle.feature_names)
        lew = Lewis(
            compas_software_positive,
            data=features,
            feature_names=bundle.feature_names,
            graph=bundle.graph,
        )
        exp = lew.explain_global()
        # Criminal history dominates demographics (Figure 3c shape).
        ranking = exp.ranking("necessity_sufficiency")
        assert ranking.index("priors_count") < ranking.index("sex")
        # The software is racially biased by construction.
        assert exp.score_of("race").sufficiency > 0.1

    def test_compas_contextual_bias_shape(self):
        """Figure 4c: worsening priors hurts Black defendants more."""
        bundle = load_dataset("compas", n_rows=4_000, seed=0)
        features = bundle.table.select(bundle.feature_names)
        lew = Lewis(
            compas_software_positive,
            data=features,
            feature_names=bundle.feature_names,
            graph=bundle.graph,
        )
        black = lew.explain_context({"race": "Black"}, attributes=["priors_count"])
        white = lew.explain_context({"race": "White"}, attributes=["priors_count"])
        assert (
            black.score_of("priors_count").necessity
            >= white.score_of("priors_count").necessity
        )


class TestMulticlass:
    def test_drug_positive_rate_with_single_favourable_class(self):
        bundle = load_dataset("drug", n_rows=800, seed=0)
        train, test = train_test_split(bundle.table, seed=0)
        model = fit_table_model(
            "random_forest", train, bundle.feature_names, bundle.label,
            seed=0, n_estimators=10,
        )
        lew = Lewis(
            model, data=test, graph=bundle.graph, positive_outcome="never"
        )
        preds = model.predict_labels(test)
        assert lew.positive_rate == pytest.approx(
            np.mean([p == "never" for p in preds])
        )

    def test_drug_local_and_global_consistent(self):
        bundle = load_dataset("drug", n_rows=800, seed=0)
        train, test = train_test_split(bundle.table, seed=0)
        model = fit_table_model(
            "random_forest", train, bundle.feature_names, bundle.label,
            seed=0, n_estimators=10,
        )
        lew = Lewis(model, data=test, graph=bundle.graph, positive_outcome="never")
        exp = lew.explain_local(index=0)
        assert len(exp.contributions) == len(lew.attributes)


class TestGroundTruthValidation:
    """Figure 11a in miniature: estimates track SCM truth on German-syn."""

    @pytest.fixture(scope="class")
    def syn_setup(self):
        bundle = load_dataset("german_syn", n_rows=8_000, seed=0)
        train, test = train_test_split(bundle.table, seed=0)
        model = fit_table_model(
            "random_forest_regressor",
            train,
            bundle.feature_names,
            bundle.label,
            seed=0,
            n_estimators=15,
        )
        lew = Lewis(model, data=test, graph=bundle.graph, threshold=0.5)
        truth = GroundTruthScores(
            bundle.scm,
            predict=lambda t: model.predict_value(t.select(bundle.feature_names)),
            positive=lambda s: s >= 0.5,
            n_samples=25_000,
            seed=3,
        )
        return bundle, lew, truth

    def test_nesuf_close_to_truth_for_direct_causes(self, syn_setup):
        bundle, lew, truth = syn_setup
        for attribute in ("saving", "status", "housing"):
            hi = len(lew.data.domain(attribute)) - 1
            est = lew.estimator.necessity_sufficiency({attribute: hi}, {attribute: 0})
            exact = truth.necessity_sufficiency(attribute, hi, 0)
            assert est == pytest.approx(exact, abs=0.12)

    def test_indirect_influence_detected(self, syn_setup):
        """age affects the score only through saving/status; LEWIS must
        still assign it a clearly non-zero score (Remark 3.2)."""
        bundle, lew, truth = syn_setup
        hi = len(lew.data.domain("age")) - 1
        est = lew.estimator.necessity_sufficiency({"age": hi}, {"age": 0})
        exact = truth.necessity_sufficiency("age", hi, 0)
        assert exact > 0.2
        assert est == pytest.approx(exact, abs=0.15)

    def test_sample_size_reduces_error(self):
        bundle = load_dataset("german_syn", n_rows=40_000, seed=0)
        model = fit_table_model(
            "random_forest_regressor",
            bundle.table,
            bundle.feature_names,
            bundle.label,
            seed=0,
            n_estimators=10,
        )
        truth = GroundTruthScores(
            bundle.scm,
            predict=lambda t: model.predict_value(t.select(bundle.feature_names)),
            positive=lambda s: s >= 0.5,
            n_samples=30_000,
            seed=5,
        )
        exact = truth.necessity_sufficiency("status", 2, 0)
        errors = {}
        for n in (800, 20_000):
            sample = load_dataset("german_syn", n_rows=n, seed=9)
            lew = Lewis(model, data=sample.table, graph=sample.graph, threshold=0.5)
            est = lew.estimator.necessity_sufficiency({"status": 2}, {"status": 0})
            errors[n] = abs(est - exact)
        assert errors[20_000] <= errors[800] + 0.02


class TestRecourseGroundTruth:
    """Section 5.5 recourse analysis: SCM-validated sufficiency."""

    def test_recourse_sufficient_under_true_interventions(self):
        bundle = load_dataset("wide", n_variables=8, n_rows=6_000, seed=0)
        scm = bundle.scm
        table = bundle.table.select(bundle.feature_names)
        positive = bundle.table.codes("outcome").astype(bool)
        estimator = ScoreEstimator(table, positive, diagram=bundle.graph)
        solver = RecourseSolver(estimator, bundle.feature_names[:4])

        negatives = np.nonzero(~positive)[0][:30]
        validated, total = 0, 0
        for idx in negatives:
            row = table.row_codes(int(idx))
            try:
                recourse = solver.solve(row, alpha=0.5)
            except RecourseInfeasibleError:
                continue
            if recourse.is_empty:
                continue
            total += 1
            interventions = {
                a.attribute: table.column(a.attribute).categories.index(a.new_value)
                for a in recourse.actions
            }
            # True sufficiency: resample the SCM under the intervention
            # and measure the positive rate among comparable units.
            cf = scm.sample(4_000, seed=int(idx), interventions=interventions)
            rate = cf.codes("outcome").mean()
            validated += int(rate >= 0.5)
        assert total >= 5
        assert validated / total >= 0.8

    def test_constraint_growth_linear(self):
        """Section 5.5 scalability: constraints = |actionable| + 1."""
        bundle = load_dataset("wide", n_variables=30, n_rows=3_000, seed=0)
        table = bundle.table.select(bundle.feature_names)
        positive = bundle.table.codes("outcome").astype(bool)
        estimator = ScoreEstimator(table, positive)
        row = table.row_codes(int(np.nonzero(~positive)[0][0]))
        for k in (5, 10, 20):
            solver = RecourseSolver(estimator, bundle.feature_names[:k])
            recourse = solver.solve(row, alpha=0.6)
            assert recourse.n_constraints == k + 1
