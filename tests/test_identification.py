"""Tests for backdoor identification against SCM ground truth."""

import numpy as np
import pytest

from repro.causal.identification import BackdoorAdjustment, interventional_probability
from repro.estimation.probability import FrequencyEstimator
from repro.utils.exceptions import GraphError


class TestBackdoorAdjustment:
    def test_outcome_must_be_in_diagram(self, toy_scm, toy_table):
        est = FrequencyEstimator(toy_table)
        with pytest.raises(GraphError):
            BackdoorAdjustment(est, toy_scm.diagram, outcome="Q")

    def test_adjustment_set_is_confounder(self, toy_scm, toy_table):
        est = FrequencyEstimator(toy_table)
        adj = BackdoorAdjustment(est, toy_scm.diagram, outcome="Y")
        assert adj.adjustment_set(["X"]) == ["Z"]

    def test_adjustment_set_for_root_treatment_is_empty(self, toy_scm, toy_table):
        est = FrequencyEstimator(toy_table)
        adj = BackdoorAdjustment(est, toy_scm.diagram, outcome="Y")
        assert adj.adjustment_set(["Z"]) == []

    def test_adjustment_set_cached(self, toy_scm, toy_table):
        est = FrequencyEstimator(toy_table)
        adj = BackdoorAdjustment(est, toy_scm.diagram, outcome="Y")
        assert adj.adjustment_set(["X"]) is adj.adjustment_set(["X"])

    def test_interventional_matches_scm_truth(self, toy_scm):
        table = toy_scm.sample(40_000, seed=11)
        est = FrequencyEstimator(table)
        adj = BackdoorAdjustment(est, toy_scm.diagram, outcome="Y")
        for x_code in (0, 1, 2):
            truth = toy_scm.sample(
                40_000, seed=99, interventions={"X": x_code}
            ).codes("Y").mean()
            estimate = adj.interventional(1, {"X": x_code})
            assert estimate == pytest.approx(truth, abs=0.03)

    def test_adjusted_differs_from_conditional_under_confounding(self, toy_scm):
        table = toy_scm.sample(40_000, seed=12)
        est = FrequencyEstimator(table)
        adj = BackdoorAdjustment(est, toy_scm.diagram, outcome="Y")
        conditional = est.probability({"Y": 1}, {"X": 2})
        adjusted = adj.interventional(1, {"X": 2})
        # Z confounds X and Y, so conditioning != intervening.
        assert abs(conditional - adjusted) > 0.01

    def test_context_conditioning(self, toy_scm):
        table = toy_scm.sample(40_000, seed=13)
        est = FrequencyEstimator(table)
        adj = BackdoorAdjustment(est, toy_scm.diagram, outcome="Y")
        # Conditioning on the only confounder: do(x) within Z=1 equals
        # the plain conditional within Z=1.
        plain = est.probability({"Y": 1}, {"X": 2, "Z": 1})
        value = adj.interventional(1, {"X": 2}, context={"Z": 1})
        assert value == pytest.approx(plain, abs=1e-9)

    def test_explicit_adjustment_override(self, toy_scm):
        table = toy_scm.sample(20_000, seed=14)
        est = FrequencyEstimator(table)
        adj = BackdoorAdjustment(est, toy_scm.diagram, outcome="Y")
        forced = adj.interventional(1, {"X": 1}, adjustment=[])
        assert forced == pytest.approx(est.probability({"Y": 1}, {"X": 1}))

    def test_one_shot_wrapper(self, toy_scm):
        table = toy_scm.sample(20_000, seed=15)
        est = FrequencyEstimator(table)
        a = interventional_probability(est, toy_scm.diagram, "Y", 1, {"X": 1})
        b = BackdoorAdjustment(est, toy_scm.diagram, "Y").interventional(1, {"X": 1})
        assert a == pytest.approx(b)
