"""Deep checks of the dataset SCMs' causal structure.

The substitution argument in DESIGN.md rests on the replicas encoding
the qualitative causal structure the paper's analysis uses; these tests
pin that structure down so future edits to the generators cannot
silently break an experiment's premise.
"""

import numpy as np
import pytest

from repro.data import load_dataset


@pytest.fixture(scope="module")
def german():
    return load_dataset("german", n_rows=200, seed=0)


@pytest.fixture(scope="module")
def adult():
    return load_dataset("adult", n_rows=200, seed=0)


@pytest.fixture(scope="module")
def compas():
    return load_dataset("compas", n_rows=200, seed=0)


@pytest.fixture(scope="module")
def drug():
    return load_dataset("drug", n_rows=200, seed=0)


class TestGermanStructure:
    def test_demographics_are_roots(self, german):
        graph = german.graph
        assert graph.parents("sex") == []
        assert graph.parents("age") == []

    def test_age_upstream_of_financials(self, german):
        descendants = german.graph.descendants("age")
        for attribute in ("employment", "savings", "credit_hist"):
            assert attribute in descendants

    def test_status_confounded_through_savings(self, german):
        # savings -> status, and savings also drives the label: status's
        # backdoor set in the outcome-extended graph must be non-empty.
        graph = german.graph.with_outcome("__o__", german.feature_names)
        found = graph.backdoor_set("status", "__o__")
        assert found  # non-empty adjustment set needed

    def test_every_feature_has_admissible_backdoor(self, german):
        graph = german.graph.with_outcome("__o__", german.feature_names)
        for feature in german.feature_names:
            assert graph.backdoor_set(feature, "__o__") is not None


class TestAdultStructure:
    def test_roots(self, adult):
        for root in ("age", "sex", "country"):
            assert adult.graph.parents(root) == []

    def test_marital_descends_from_age_and_sex(self, adult):
        parents = adult.graph.parents("marital")
        assert "age" in parents and "sex" in parents

    def test_occupation_downstream_of_education(self, adult):
        assert "occup" in adult.graph.descendants("edu")

    def test_hours_has_three_parents(self, adult):
        assert set(adult.graph.parents("hours")) == {"occup", "marital", "sex"}


class TestCompasStructure:
    def test_race_upstream_of_criminal_history(self, compas):
        descendants = compas.graph.descendants("race")
        assert "juv_fel_count" in descendants
        assert "priors_count" in descendants

    def test_score_mechanism_uses_race_directly(self, compas):
        # The documented bias: race is a parent of the software score.
        assert "race" in compas.scm.equation("compas_score").parents

    def test_recidivism_mechanism_does_not_use_race(self, compas):
        assert "race" not in compas.scm.equation("two_year_recid").parents


class TestDrugStructure:
    def test_paper_roots(self, drug):
        for root in ("country", "age", "gender", "ethnicity"):
            assert drug.graph.parents(root) == []

    def test_sensation_depends_on_impulsivity(self, drug):
        assert "impulsive" in drug.graph.parents("sensation")

    def test_label_mechanism_spans_demographics_and_traits(self, drug):
        parents = set(drug.scm.equation("mushrooms").parents)
        assert {"country", "age", "sensation", "edu"} <= parents


class TestCrossDatasetInvariants:
    @pytest.mark.parametrize("name", ["german", "adult", "compas", "drug", "german_syn"])
    def test_graphs_are_acyclic_and_feature_complete(self, name):
        bundle = load_dataset(name, n_rows=100, seed=0)
        order = bundle.graph.topological_order()  # raises on cycles
        assert set(bundle.feature_names) <= set(order)

    @pytest.mark.parametrize("name", ["german", "adult", "compas", "drug"])
    def test_scm_regenerates_identical_tables(self, name):
        a = load_dataset(name, n_rows=150, seed=42)
        b = load_dataset(name, n_rows=150, seed=42)
        for column in a.table.names:
            assert a.table.codes(column).tolist() == b.table.codes(column).tolist()

    @pytest.mark.parametrize("name", ["german", "adult", "compas", "drug"])
    def test_label_rate_not_degenerate(self, name):
        bundle = load_dataset(name, n_rows=3_000, seed=0)
        counts = bundle.table.column(bundle.label).value_counts()
        total = sum(counts.values())
        for value, count in counts.items():
            assert count / total < 0.95, f"{name}: label {value} dominates"
