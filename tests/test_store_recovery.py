"""Kill-and-restore: snapshot + WAL replay == fresh rebuild, bit for bit.

The durability contract: at any moment a session can be killed, and a
new process that loads the latest snapshot and replays the write-ahead
log tail must reach a state whose engine tensors and LEWIS scores are
*bit-identical* to a session rebuilt from scratch over the same final
data.  Counts are integers and scores deterministic functions of them,
so exact equality is the right bar.  Hypothesis drives random update
histories with snapshots (checkpoints) interleaved at arbitrary points.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fit_table_model
from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.store import (
    ArtifactStore,
    checkpoint_session,
    create_tenant,
    restore_session,
    snapshot_session,
    verify_restore,
)
from repro.utils.exceptions import EstimationError, StoreError

CARDS = {"a": 3, "b": 4, "c": 2}
NAMES = tuple(CARDS)
SIGNATURES = [("a",), ("a", "b"), ("b", "c"), ("a", "b", "c")]


def make_table(rows: list[tuple[int, ...]]) -> Table:
    return Table.from_dict(
        {name: [row[i] for row in rows] for i, name in enumerate(NAMES)},
        domains={name: list(range(card)) for name, card in CARDS.items()},
    )


@pytest.fixture(scope="module")
def trained():
    """One small serialisable model over the synthetic schema."""
    rng = np.random.default_rng(0)
    n = 400
    rows = {
        "a": rng.integers(0, 3, n).tolist(),
        "b": rng.integers(0, 4, n).tolist(),
        "c": rng.integers(0, 2, n).tolist(),
    }
    rows["y"] = [
        int(a + b + c >= 3) for a, b, c in zip(rows["a"], rows["b"], rows["c"])
    ]
    table = Table.from_dict(
        rows,
        domains={
            "a": [0, 1, 2], "b": [0, 1, 2, 3], "c": [0, 1], "y": [0, 1],
        },
    )
    return fit_table_model("logistic", table, list(NAMES), "y", seed=0)


def build_lewis(trained, table: Table) -> Lewis:
    return Lewis(
        trained,
        data=table,
        attributes=list(NAMES),
        positive_outcome=1,
        infer_orderings=False,
    )


def row_strategy():
    return st.tuples(*(st.integers(0, CARDS[n] - 1) for n in NAMES))


@st.composite
def histories(draw):
    """Base rows + steps of (insert rows, delete fracs, checkpoint?)."""
    base = draw(st.lists(row_strategy(), min_size=4, max_size=20))
    steps = draw(
        st.lists(
            st.tuples(
                st.lists(row_strategy(), min_size=0, max_size=5),
                st.lists(st.floats(0, 1), min_size=0, max_size=3),
                st.booleans(),
            ),
            min_size=1,
            max_size=4,
        )
    )
    return base, steps


def warm(session) -> None:
    for signature in SIGNATURES:
        session.lewis.estimator.engine.tensor(signature)


def safe_score(lewis, attribute, value, baseline):
    try:
        return lewis.score(attribute, value, baseline)
    except EstimationError as exc:
        return ("unsupported", str(exc))


class TestKillAndRestore:
    @settings(max_examples=25, deadline=None)
    @given(histories())
    def test_restore_equals_fresh_rebuild(self, tmp_path_factory, trained, case):
        base, steps = case
        tmp = tmp_path_factory.mktemp("store")
        store = ArtifactStore(tmp)
        session = create_tenant(store, "t", build_lewis(trained, make_table(base)))
        warm(session)
        mirror = [list(r) for r in base]
        for inserted, delete_fracs, checkpoint in steps:
            n = len(mirror)
            deleted = sorted({int(f * (n - 1)) for f in delete_fracs}) if n else []
            session.update(
                {
                    "insert": [dict(zip(NAMES, row)) for row in inserted],
                    "delete": deleted,
                }
            )
            keep = [row for i, row in enumerate(mirror) if i not in set(deleted)]
            mirror = keep + [list(r) for r in inserted]
            if checkpoint:
                checkpoint_session(store, session, "t")
        session.close()  # "kill"

        restored = restore_session(store, "t")
        fresh = build_lewis(trained, make_table(mirror))

        assert len(restored.lewis.data) == len(mirror)
        assert np.array_equal(restored.lewis.positive, fresh.positive)
        restored_engine = restored.lewis.estimator.engine
        fresh_engine = fresh.estimator.engine
        for signature in SIGNATURES:
            maintained = restored_engine.tensor(signature)
            rebuilt = fresh_engine.tensor(signature)
            assert np.array_equal(maintained, rebuilt), signature
        # scores: identical contrasts must produce identical floats
        for attribute, value, baseline in (("a", 2, 0), ("b", 3, 1)):
            assert safe_score(restored.lewis, attribute, value, baseline) == (
                safe_score(fresh, attribute, value, baseline)
            )
        # the restored session's own consistency check agrees
        assert verify_restore(restored)["ok"]
        restored.close()


class TestRestoreDetails:
    @pytest.fixture()
    def store(self, tmp_path):
        return ArtifactStore(tmp_path / "store")

    @pytest.fixture()
    def session(self, store, trained):
        rows = [(i % 3, i % 4, i % 2) for i in range(40)]
        session = create_tenant(store, "t", build_lewis(trained, make_table(rows)))
        warm(session)
        yield session
        session.close()

    def test_restore_skips_recount_and_matches_tokens(self, store, session):
        snapshot_session(store, session, "t")
        restored = restore_session(store, "t")
        assert restored.fingerprint == session.fingerprint
        assert restored.state_token == session.state_token
        assert restored.table_version == session.table_version
        # warm: the first tensor access is a cache hit, not a rebuild
        engine = restored.lewis.estimator.engine
        before = engine.stats()["misses"]
        for signature in SIGNATURES:
            engine.tensor(signature)
        assert engine.stats()["misses"] == before
        restored.close()

    def test_replay_continues_state_chain(self, store, session):
        snapshot_session(store, session, "t")
        session.update({"insert": [{"a": 0, "b": 0, "c": 1}]})
        session.update({"delete": [0, 1]})
        restored = restore_session(store, "t")
        assert restored.state_token == session.state_token
        assert len(restored.lewis.data) == len(session.lewis.data)
        restored.close()

    def test_sequence_continuity_across_checkpoint_and_process(self, store, session):
        session.update({"insert": [{"a": 1, "b": 1, "c": 1}]})
        checkpoint_session(store, session, "t")  # compacts the log
        session.close()

        second = restore_session(store, "t")
        second.update({"insert": [{"a": 2, "b": 2, "c": 0}]})
        assert second.log.last_seq == 2  # continues past the compacted prefix
        second.close()

        third = restore_session(store, "t")
        assert len(third.lewis.data) == len(second.lewis.data)
        assert third.state_token == second.state_token
        third.close()

    def test_stale_snapshot_with_compacted_gap_refuses_restore(self, store, session):
        """Restoring a snapshot whose covering WAL prefix was compacted
        away must fail loudly, not silently skip the missing deltas."""
        stale_id = snapshot_session(store, session, "t")["snapshot_id"]
        session.update({"insert": [{"a": 0, "b": 0, "c": 0}]})
        session.update({"insert": [{"a": 1, "b": 1, "c": 1}]})
        checkpoint_session(store, session, "t")  # compacts seqs 1-2
        session.update({"insert": [{"a": 2, "b": 2, "c": 1}]})
        with pytest.raises(StoreError, match="compacted"):
            restore_session(store, "t", snapshot_id=stale_id)
        # the latest snapshot restores fine
        latest = restore_session(store, "t")
        assert len(latest.lewis.data) == 43
        latest.close()

    def test_concurrent_update_and_checkpoint_stay_consistent(self, store, session):
        """A checkpoint taken while update traffic is in flight must pair
        its serialized state with the right wal_seq — compaction can
        never drop a delta the snapshot did not capture."""
        import threading

        errors: list = []

        def updater(code: int):
            try:
                for _ in range(5):
                    session.update({"insert": [{"a": code, "b": code, "c": code % 2}]})
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def checkpointer():
            try:
                for _ in range(4):
                    checkpoint_session(store, session, "t")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=updater, args=(0,)),
            threading.Thread(target=updater, args=(1,)),
            threading.Thread(target=checkpointer),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        session.close()
        restored = restore_session(store, "t")
        assert len(restored.lewis.data) == 50  # 40 + 10 inserts, none lost
        assert verify_restore(restored)["ok"]
        restored.close()

    def test_restore_without_replay_is_bare_snapshot(self, store, session):
        snapshot_session(store, session, "t")
        session.update({"insert": [{"a": 0, "b": 0, "c": 0}]})
        bare = restore_session(store, "t", replay=False)
        assert len(bare.lewis.data) == 40
        bare.close()
        replayed = restore_session(store, "t")
        assert len(replayed.lewis.data) == 41
        replayed.close()

    def test_recreating_an_existing_tenant_is_refused(self, store, session, trained):
        """Re-creating a tenant over its own history would let the next
        checkpoint compact away acknowledged updates the new snapshot
        never contained."""
        session.update({"insert": [{"a": 0, "b": 0, "c": 0}]})
        rows = [(0, 0, 0)] * 10
        with pytest.raises(StoreError, match="already exists"):
            create_tenant(store, "t", build_lewis(trained, make_table(rows)))
        # the logged update is still replayable
        restored = restore_session(store, "t")
        assert len(restored.lewis.data) == 41
        restored.close()

    def test_opaque_callable_cannot_be_snapshotted(self, store):
        def opaque(features: Table) -> np.ndarray:
            return features.codes("a") >= 1

        lewis = Lewis(
            opaque,
            data=make_table([(0, 0, 0), (1, 1, 1), (2, 2, 1)]),
            feature_names=list(NAMES),
            attributes=list(NAMES),
            infer_orderings=False,
        )
        with pytest.raises(StoreError, match="serialisable"):
            create_tenant(store, "t2", lewis)

    def test_snapshot_with_trained_model_round_trips(self, store):
        from repro import load_dataset, train_test_split

        bundle = load_dataset("german", n_rows=300, seed=0)
        train, test = train_test_split(bundle.table, test_fraction=0.3, seed=0)
        trained = fit_table_model(
            "random_forest",
            train,
            bundle.feature_names,
            bundle.label,
            seed=0,
            n_estimators=5,
            max_depth=5,
        )
        lewis = Lewis(
            trained,
            data=test,
            graph=bundle.graph,
            positive_outcome=bundle.positive_label,
        )
        session = create_tenant(
            store, "german", lewis, default_actionable=bundle.actionable
        )
        answer = session.explain_global(max_pairs_per_attribute=4)
        checkpoint_session(store, session, "german")
        session.close()

        restored = restore_session(store, "german")
        again = restored.explain_global(max_pairs_per_attribute=4)
        assert again["result"] == answer["result"]
        assert restored.default_actionable == bundle.actionable
        # orderings were restored, not re-inferred: domains match exactly
        for name in restored.lewis.data.names:
            assert restored.lewis.data.domain(name) == lewis.data.domain(name)
        restored.close()
