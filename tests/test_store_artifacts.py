"""ArtifactStore: content addressing, manifests, codecs, engine state."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.causal.graph import CausalDiagram
from repro.data.table import Column, Table
from repro.estimation.engine import ContingencyEngine
from repro.store import (
    ArtifactStore,
    graph_from_dict,
    graph_to_dict,
    table_from_bytes,
    table_to_bytes,
)
from repro.utils.exceptions import StoreError


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


def make_table(n=40, seed=0) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_dict(
        {
            "a": rng.integers(0, 3, n).tolist(),
            "b": rng.integers(0, 4, n).tolist(),
            "color": rng.choice(["red", "green", "blue"], n).tolist(),
        },
        domains={"a": [0, 1, 2], "b": [0, 1, 2, 3], "color": ["red", "green", "blue"]},
        unordered=["color"],
    )


class TestBlobs:
    def test_round_trip_and_dedup(self, store):
        d1 = store.put_bytes(b"hello")
        d2 = store.put_bytes(b"hello")
        assert d1 == d2
        assert store.get_bytes(d1) == b"hello"
        assert store.has(d1)
        assert store.stats()["objects"] == 1

    def test_missing_blob_raises(self, store):
        with pytest.raises(StoreError, match="no object"):
            store.get_bytes("0" * 64)

    def test_json_round_trip(self, store):
        doc = {"b": [1, 2], "a": {"nested": True}}
        digest = store.put_json(doc)
        assert store.get_json(digest) == doc
        # canonical encoding: key order does not change the address
        assert store.put_json({"a": {"nested": True}, "b": [1, 2]}) == digest


class TestManifests:
    def test_write_and_latest(self, store):
        first = store.write_manifest("t1", {"blobs": {}, "wal_seq": 0})
        second = store.write_manifest("t1", {"blobs": {}, "wal_seq": 3})
        assert [first, second] == store.snapshots("t1")
        assert store.manifest("t1")["snapshot_id"] == second
        assert store.manifest("t1", first)["wal_seq"] == 0
        assert store.tenants() == ["t1"]

    def test_unknown_tenant_raises(self, store):
        with pytest.raises(StoreError, match="unknown tenant"):
            store.manifest("nope")
        store.write_manifest("t1", {"blobs": {}})
        with pytest.raises(StoreError, match="no snapshot"):
            store.manifest("t1", "99999999")

    def test_bad_tenant_names_rejected(self, store):
        for bad in ("", "../evil", "a/b", ".hidden", "sp ace"):
            with pytest.raises(StoreError, match="invalid tenant name"):
                store.write_manifest(bad, {})

    def test_reserved_route_names_rejected(self, store):
        # a tenant named like an HTTP route would be unreachable
        for reserved in ("update", "registry", "health", "v1"):
            with pytest.raises(StoreError, match="reserved"):
                store.write_manifest(reserved, {})

    def test_remove_and_gc(self, store):
        digest = store.put_bytes(b"model-bytes")
        store.write_manifest("t1", {"blobs": {"model": digest}, "wal_seq": 0})
        store.write_manifest("t2", {"blobs": {"model": digest}, "wal_seq": 0})
        assert store.remove_tenant("t1")
        assert store.gc() == 0  # t2 still references the blob
        assert store.remove_tenant("t2")
        assert store.gc() == 1
        assert not store.has(digest)
        assert not store.remove_tenant("t2")


class TestTableCodec:
    def test_round_trip_bit_identical(self):
        table = make_table()
        restored = table_from_bytes(table_to_bytes(table))
        assert restored.names == table.names
        for name in table.names:
            original = table.column(name)
            copy = restored.column(name)
            assert np.array_equal(copy.codes, original.codes)
            assert copy.categories == original.categories
            assert copy.ordered == original.ordered
        # the schema fingerprint (and hence every cache key) survives
        assert restored.schema_fingerprint() == table.schema_fingerprint()

    def test_numpy_scalar_domains_become_portable(self):
        table = Table(
            [Column.from_codes("x", np.array([0, 1]), [np.int64(0), np.int64(1)])]
        )
        restored = table_from_bytes(table_to_bytes(table))
        assert restored.domain("x") == (0, 1)
        assert all(isinstance(c, int) for c in restored.domain("x"))


class TestGraphCodec:
    def test_round_trip(self):
        graph = CausalDiagram(
            edges=[("a", "b"), ("b", "c")], nodes=["a", "b", "c", "isolated"]
        )
        restored = graph_from_dict(graph_to_dict(graph))
        assert sorted(restored.nodes) == sorted(graph.nodes)
        assert sorted(restored.edges) == sorted(graph.edges)


class TestEngineState:
    def test_save_load_round_trip(self):
        table = make_table()
        engine = ContingencyEngine(table)
        for signature in (("a",), ("a", "b"), ("a", "b", "color")):
            engine.tensor(signature)
        engine.apply_delta(inserted_rows=[{"a": 0, "b": 1, "color": 2}])
        buf = io.BytesIO()
        meta = engine.save_state(buf)
        assert len(meta["keys"]) == 3 and meta["version"] == 1

        buf.seek(0)
        fresh = ContingencyEngine(engine.table)
        fresh.load_state(buf)
        assert fresh.version == engine.version
        for signature in (("a",), ("a", "b"), ("a", "b", "color")):
            assert np.array_equal(fresh.tensor(signature), engine.tensor(signature))
        # the cache was warm: no misses beyond the initial lookups
        assert fresh.stats()["misses"] == 0

    def test_load_rejects_wrong_table(self):
        engine = ContingencyEngine(make_table(n=40))
        engine.tensor(("a",))
        buf = io.BytesIO()
        engine.save_state(buf)
        buf.seek(0)
        other = ContingencyEngine(make_table(n=41))
        with pytest.raises(ValueError, match="rows"):
            other.load_state(buf)

    def test_load_rejects_divergent_counts(self):
        engine = ContingencyEngine(make_table(n=40, seed=0))
        engine.tensor(("a",))
        buf = io.BytesIO()
        engine.save_state(buf)
        buf.seek(0)
        # same row count, different contents -> count sums match but the
        # per-cell distribution is checked via the schema shape + total;
        # a different-domain table fails the shape check
        shrunk = Table.from_dict(
            {"a": [0] * 40, "b": [0] * 40, "color": ["red"] * 40},
            domains={"a": [0, 1], "b": [0, 1, 2, 3], "color": ["red", "green", "blue"]},
        )
        other = ContingencyEngine(shrunk)
        with pytest.raises(ValueError, match="shape"):
            other.load_state(buf)

    def test_load_rejects_alpha_mismatch(self):
        engine = ContingencyEngine(make_table())
        engine.tensor(("a",))
        buf = io.BytesIO()
        engine.save_state(buf)
        buf.seek(0)
        other = ContingencyEngine(make_table(), alpha=0.5)
        with pytest.raises(ValueError, match="alpha"):
            other.load_state(buf)
