"""Property tests: the cohort fast paths equal the scalar loops exactly.

The batched local-explanation pipeline (``local_score_arrays`` →
``build_local_explanations_batch``) and the deduplicated batch recourse
solver (``RecourseSolver.solve_batch``) must agree with the historical
one-row-at-a-time code across random tables, diagrams present/absent,
and positive/negative outcomes — the same 1e-12 contract
``tests/test_engine_parity.py`` enforces for the frequency engine.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, example, given, settings
from hypothesis import strategies as st

from repro.causal.graph import CausalDiagram
from repro.core.explanations import (
    build_local_explanation,
    build_local_explanations_batch,
)
from repro.core.recourse import RecourseSolver
from repro.core.scores import ScoreEstimator
from repro.data.table import Table
from repro.utils.exceptions import RecourseInfeasibleError

TOL = 1e-12

NAMES = ("W", "X", "Y", "Z")

DIAGRAMS = (
    None,
    CausalDiagram([("W", "X"), ("W", "Y"), ("X", "Y")], nodes=NAMES),
    CausalDiagram([("Z", "X"), ("Z", "W"), ("X", "W")], nodes=NAMES),
    CausalDiagram([("W", "X"), ("X", "Y"), ("Y", "Z")], nodes=NAMES),
)


def make_table(seed: int, n_rows: int, cards: tuple[int, ...]) -> Table:
    rng = np.random.default_rng(seed)
    codes = {
        name: rng.integers(0, card, size=n_rows)
        for name, card in zip(NAMES, cards)
    }
    domains = {name: list(range(card)) for name, card in zip(NAMES, cards)}
    return Table.from_codes(codes, domains)


def make_estimator(
    seed: int, n_rows: int, cards: tuple[int, ...], diagram_index: int
) -> ScoreEstimator:
    table = make_table(seed, n_rows, cards)
    rng = np.random.default_rng(seed + 1)
    weights = rng.normal(size=len(NAMES))
    score = sum(w * table.codes(n) for w, n in zip(weights, NAMES))
    positive = score >= np.median(score)
    return ScoreEstimator(table, positive, diagram=DIAGRAMS[diagram_index])


scenario = st.tuples(
    st.integers(min_value=0, max_value=10_000),  # seed
    st.integers(min_value=20, max_value=120),  # rows
    st.tuples(*[st.integers(min_value=2, max_value=4) for _ in NAMES]),  # cards
    st.integers(min_value=0, max_value=len(DIAGRAMS) - 1),  # diagram
    st.integers(min_value=1, max_value=12),  # cohort size
)


def cohort_indices(seed: int, n_rows: int, size: int) -> list[int]:
    rng = np.random.default_rng(seed + 13)
    return sorted(int(i) for i in rng.choice(n_rows, size=size, replace=False))


@given(scenario)
# Regression: this example violated the 1e-12 contract by 1.6e-11 before the
# outcome model switched to a gathered-coefficient logit whose accumulation
# order is batch-size independent (BLAS gemm vs dot reorder sums by ~1e-16,
# amplified by the necessity formula's division by a small probability).
@example((2, 71, (2, 2, 4, 3), 0, 7))
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_local_score_arrays_equal_scalar_local_scores(params):
    seed, n_rows, cards, diagram_index, size = params
    estimator = make_estimator(seed, n_rows, cards, diagram_index)
    features = estimator.table.drop([estimator._outcome])
    indices = cohort_indices(seed, n_rows, min(size, n_rows))
    rows = [features.row_codes(i) for i in indices]
    arrays = estimator.local_score_arrays(rows, NAMES)
    for name in NAMES:
        got = arrays[name]
        card = cards[NAMES.index(name)]
        assert got.probabilities.shape == (len(rows), card)
        for i, row in enumerate(rows):
            current = int(row[name])
            context = estimator.local_context(name, row)
            for value in range(card):
                probe = estimator.local_probability(name, value, context)
                assert abs(got.probabilities[i, value] - probe) <= TOL
                if value == current:
                    assert got.necessity[i, value] == 0.0
                    assert got.sufficiency[i, value] == 0.0
                    continue
                hi, lo = max(value, current), min(value, current)
                triple = estimator.local_scores(name, hi, lo, context)
                assert abs(got.necessity[i, value] - triple.necessity) <= TOL
                assert abs(got.sufficiency[i, value] - triple.sufficiency) <= TOL
                assert (
                    abs(
                        got.necessity_sufficiency[i, value]
                        - triple.necessity_sufficiency
                    )
                    <= TOL
                )


@given(scenario)
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_local_explanations_batch_equal_scalar_loop(params):
    seed, n_rows, cards, diagram_index, size = params
    estimator = make_estimator(seed, n_rows, cards, diagram_index)
    features = estimator.table.drop([estimator._outcome])
    indices = cohort_indices(seed, n_rows, min(size, n_rows))
    rows = [features.row_codes(i) for i in indices]
    # Mixed cohort: half explained as positive, half as negative outcomes.
    outcomes = [bool(estimator._positive[i]) for i in indices]
    batched = build_local_explanations_batch(estimator, rows, outcomes, NAMES)
    for row, outcome, fast in zip(rows, outcomes, batched):
        slow = build_local_explanation(
            estimator, row, outcome, NAMES, batched=False
        )
        assert fast.outcome_positive == slow.outcome_positive
        assert fast.individual == slow.individual
        assert len(fast.contributions) == len(slow.contributions)
        for a, b in zip(fast.contributions, slow.contributions):
            assert a.attribute == b.attribute
            assert a.value == b.value
            assert abs(a.positive - b.positive) <= TOL
            assert abs(a.negative - b.negative) <= TOL
            assert a.positive_foil == b.positive_foil
            assert a.negative_foil == b.negative_foil


@given(scenario)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_solve_batch_equals_scalar_solve_loop(params):
    seed, n_rows, cards, diagram_index, size = params
    estimator = make_estimator(seed, n_rows, cards, diagram_index)
    features = estimator.table.drop([estimator._outcome])
    solver = RecourseSolver(estimator, actionable=["X", "Y"])
    indices = cohort_indices(seed, n_rows, min(size, n_rows))
    rows = [features.row_codes(i) for i in indices]
    alpha = 0.6
    batched = solver.solve_batch(rows, alpha=alpha, on_infeasible="none")
    for row, fast in zip(rows, batched):
        try:
            slow = solver.solve(row, alpha=alpha)
        except RecourseInfeasibleError:
            assert fast is None
            continue
        assert fast is not None
        assert [
            (a.attribute, a.current_value, a.new_value, a.cost)
            for a in fast.actions
        ] == [
            (a.attribute, a.current_value, a.new_value, a.cost)
            for a in slow.actions
        ]
        assert abs(fast.total_cost - slow.total_cost) <= TOL
        assert abs(fast.estimated_sufficiency - slow.estimated_sufficiency) <= TOL
        assert abs(fast.estimated_probability - slow.estimated_probability) <= TOL
        assert abs(fast.threshold - slow.threshold) <= TOL


def test_solve_batch_on_infeasible_raise_matches_scalar():
    """In "raise" mode the first infeasible row aborts, as the loop would."""
    estimator = make_estimator(3, 80, (2, 2, 2, 2), 0)
    features = estimator.table.drop([estimator._outcome])
    solver = RecourseSolver(estimator, actionable=["X"])
    rows = [features.row_codes(i) for i in range(60)]
    alpha = 0.999
    scalar_fails = False
    for row in rows:
        try:
            solver.solve(row, alpha=alpha)
        except RecourseInfeasibleError:
            scalar_fails = True
            break
    if scalar_fails:
        with pytest.raises(RecourseInfeasibleError):
            solver.solve_batch(rows, alpha=alpha, on_infeasible="raise")
    else:
        assert all(
            r is not None
            for r in solver.solve_batch(rows, alpha=alpha, on_infeasible="none")
        )


def test_solve_batch_memoises_by_signature():
    """A second batch at the same alpha re-serves memoised solutions."""
    estimator = make_estimator(5, 100, (2, 3, 2, 2), 1)
    features = estimator.table.drop([estimator._outcome])
    solver = RecourseSolver(estimator, actionable=["X", "Y"])
    rows = [features.row_codes(i) for i in range(40)]
    first = solver.solve_batch(rows, alpha=0.6, on_infeasible="none")
    stats = solver.solution_memo_stats()
    assert 0 < stats["solved_signatures"] <= 40
    second = solver.solve_batch(rows, alpha=0.6, on_infeasible="none")
    assert solver.solution_memo_stats()["solved_signatures"] == stats[
        "solved_signatures"
    ]
    for a, b in zip(first, second):
        if a is None:
            assert b is None
        else:
            assert b is not None and a.as_dict() == b.as_dict()
