"""Pool-crash containment: killed/hung workers never change answers.

The contract wired through :meth:`RecourseSolver._run_chunks_parallel`:
a crashed worker (``BrokenProcessPool``), a hung worker (pool timeout),
or a pool that cannot start gets one bounded retry on a fresh pool, and
if that fails too the identical chunk payloads run inline — so the
caller always gets a result, and that result is bit-identical to a
serial solve.  ``recourse.chunk`` is evaluated only on the worker path
(skeleton rebuild), so the inline fallback is immune by construction.
"""

from __future__ import annotations

import numpy as np

import repro.faults as faults
from repro.core.recourse import RecourseSolver
from repro.core.scores import ScoreEstimator
from repro.data.table import Table


def make_estimator(seed: int = 0, n: int = 400) -> ScoreEstimator:
    rng = np.random.default_rng(seed)
    table = Table.from_codes(
        {
            "skill": rng.integers(0, 4, n),
            "hours": rng.integers(0, 4, n),
            "degree": rng.integers(0, 3, n),
            "region": rng.integers(0, 2, n),
        },
        domains={
            "skill": [0, 1, 2, 3],
            "hours": [0, 1, 2, 3],
            "degree": [0, 1, 2],
            "region": [0, 1],
        },
    )
    z = (
        table.codes("skill") + table.codes("hours") + 2 * table.codes("degree")
    )
    return ScoreEstimator(table, z >= 5)


def negative_rows(estimator: ScoreEstimator, limit: int) -> list[dict]:
    rows = [
        estimator.table.row_codes(i)
        for i in range(estimator.table.n_rows)
        if not estimator._positive[i]
    ]
    return rows[:limit]


def force_chunking(monkeypatch) -> None:
    # Small chunks force several payloads so the pool actually
    # partitions the work; parallel_threshold=1 lets a small cohort
    # take the pool path at all.
    monkeypatch.setattr(
        "repro.core.recourse.adaptive_chunk_size", lambda *a, **k: 5
    )


def make_solver(estimator) -> RecourseSolver:
    solver = RecourseSolver(estimator, ["skill", "hours", "degree"])
    solver.parallel_threshold = 1
    return solver


def serial_reference(estimator, rows):
    solver = make_solver(estimator)
    return solver.solve_batch(rows, alpha=0.6, on_infeasible="none")


def assert_bit_identical(reference, observed):
    assert len(reference) == len(observed)
    for a, b in zip(reference, observed):
        if a is None:
            assert b is None
            continue
        assert a.as_dict() == b.as_dict()
        assert a.total_cost == b.total_cost
        assert a.estimated_sufficiency == b.estimated_sufficiency
        assert a.estimated_probability == b.estimated_probability
        assert a.threshold == b.threshold


class TestWorkerCrash:
    def test_killed_workers_fall_back_to_bit_identical_inline(
        self, monkeypatch
    ):
        """os._exit in every fresh pool's workers → inline, same answers."""
        force_chunking(monkeypatch)
        estimator = make_estimator(seed=4)
        rows = negative_rows(estimator, limit=80)
        reference = serial_reference(estimator, rows)

        solver = make_solver(estimator)
        # `once` per process: fork-started workers inherit the plan with
        # zero fires, so the first chunk in *every* worker of *every*
        # pool attempt dies like a crashed process. The parent (which
        # passes prebuilt skeletons, skipping the injection point) then
        # solves inline.
        with faults.plan({"recourse.chunk": {"action": "exit", "once": True}}):
            out = solver.solve_batch(
                rows, alpha=0.6, on_infeasible="none", workers=2,
                mp_context="fork",
            )
        stats = solver.solution_memo_stats()
        assert stats["pool_failures"] == 2  # first try + bounded retry
        assert stats["pool_fallbacks"] == 1
        assert stats["parallel_batches"] == 1
        assert_bit_identical(reference, out)

    def test_hung_workers_time_out_and_fall_back(self, monkeypatch):
        """Workers sleeping past pool_timeout_s → TimeoutError → inline."""
        force_chunking(monkeypatch)
        estimator = make_estimator(seed=4)
        rows = negative_rows(estimator, limit=80)
        reference = serial_reference(estimator, rows)

        solver = make_solver(estimator)
        solver.pool_timeout_s = 0.25
        with faults.plan(
            {"recourse.chunk": {"action": "sleep", "sleep_s": 5.0}}
        ):
            out = solver.solve_batch(
                rows, alpha=0.6, on_infeasible="none", workers=2,
                mp_context="fork",
            )
        stats = solver.solution_memo_stats()
        assert stats["pool_failures"] == 2
        assert stats["pool_fallbacks"] == 1
        assert_bit_identical(reference, out)

    def test_transient_crash_recovers_on_retry(self, monkeypatch):
        """First pool raises BrokenProcessPool; the bounded retry lands."""
        from concurrent.futures.process import BrokenProcessPool

        force_chunking(monkeypatch)
        import concurrent.futures as cf

        real_executor = cf.ProcessPoolExecutor
        failures = {"left": 1}

        class FlakyExecutor(real_executor):
            def map(self, fn, *iterables, **kwargs):
                if failures["left"]:
                    failures["left"] -= 1
                    raise BrokenProcessPool("injected transient pool crash")
                return super().map(fn, *iterables, **kwargs)

        monkeypatch.setattr(cf, "ProcessPoolExecutor", FlakyExecutor)

        estimator = make_estimator(seed=4)
        rows = negative_rows(estimator, limit=80)
        reference = serial_reference(estimator, rows)

        solver = make_solver(estimator)
        out = solver.solve_batch(
            rows, alpha=0.6, on_infeasible="none", workers=2,
            mp_context="fork",
        )
        stats = solver.solution_memo_stats()
        assert stats["pool_failures"] == 1  # first attempt only
        assert stats["pool_fallbacks"] == 0  # the retry succeeded
        assert failures["left"] == 0
        assert_bit_identical(reference, out)

    def test_no_faults_means_no_failures(self, monkeypatch):
        force_chunking(monkeypatch)
        estimator = make_estimator(seed=4)
        rows = negative_rows(estimator, limit=80)
        solver = make_solver(estimator)
        solver.solve_batch(
            rows, alpha=0.6, on_infeasible="none", workers=2,
        )
        stats = solver.solution_memo_stats()
        assert stats["pool_failures"] == 0
        assert stats["pool_fallbacks"] == 0
        assert stats["parallel_batches"] == 1
