"""Metrics registry: thread safety, exposition format, unified cache stats."""

from __future__ import annotations

import re
import threading

import pytest

from repro.obs import metrics as obs
from repro.obs.metrics import CacheStats, MetricsRegistry
from repro.utils.lru import ByteBudgetLRU


# ---------------------------------------------------------------------------
# instruments under concurrency


class TestThreadSafety:
    def test_counter_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_total", "test")
        threads = [
            threading.Thread(
                target=lambda: [counter.inc() for _ in range(1000)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8 * 1000

    def test_histogram_concurrent_observations_are_exact(self):
        registry = MetricsRegistry()
        hist = registry.histogram("t_seconds", "test", buckets=[0.5, 1.0])
        threads = [
            threading.Thread(
                target=lambda: [hist.observe(0.25) for _ in range(500)]
            )
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = hist.snapshot()
        assert snap["count"] == 8 * 500
        assert snap["sum"] == pytest.approx(8 * 500 * 0.25)
        # every observation landed in the first bucket
        assert snap["buckets"][0] == [0.5, 8 * 500]

    def test_get_or_create_races_produce_one_instrument(self):
        registry = MetricsRegistry()
        seen = []

        def grab():
            seen.append(registry.counter("shared_total", "test"))

        threads = [threading.Thread(target=grab) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(c is seen[0] for c in seen)


# ---------------------------------------------------------------------------
# exposition


class TestPrometheusExposition:
    def _filled_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("app_requests_total", "Requests.", labels={"kind": "x"}).inc(3)
        registry.gauge("app_rows", "Rows resident.").set(17)
        hist = registry.histogram("app_seconds", "Latency.", buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        return registry

    def test_lines_are_valid_prometheus_text(self):
        text = self._filled_registry().to_prometheus()
        sample = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*='
            r'"[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [^ ]+$'
        )
        for line in text.strip().splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*", line)
            else:
                assert sample.match(line), line

    def test_histogram_buckets_cumulative_and_inf_equals_count(self):
        text = self._filled_registry().to_prometheus()
        buckets = {
            m.group(1): float(m.group(2))
            for m in re.finditer(
                r'app_seconds_bucket\{le="([^"]+)"\} ([0-9.e+]+)', text
            )
        }
        assert buckets["0.1"] <= buckets["1"] <= buckets["+Inf"]
        count = float(re.search(r"app_seconds_count (\S+)", text).group(1))
        assert buckets["+Inf"] == count == 3

    def test_type_and_help_advertised(self):
        text = self._filled_registry().to_prometheus()
        assert "# TYPE app_requests_total counter" in text
        assert "# HELP app_rows Rows resident." in text
        assert "# TYPE app_seconds histogram" in text

    def test_declared_family_advertised_before_first_sample(self):
        registry = MetricsRegistry()
        registry.declare("later_total", "counter", "Created lazily.")
        text = registry.to_prometheus()
        assert "# TYPE later_total counter" in text


# ---------------------------------------------------------------------------
# collectors


class TestCollectors:
    def test_collector_output_lands_in_gauges(self):
        registry = MetricsRegistry()
        registry.register_collector("c1", lambda: {"live_things": 4.0})
        assert registry.snapshot()["gauges"]["live_things"] == 4.0

    def test_lookup_error_auto_unregisters(self):
        registry = MetricsRegistry()

        def dead():
            raise LookupError("gone")

        registry.register_collector("c1", dead)
        snap = registry.snapshot()
        assert registry.stats()["collectors"] == 0
        assert snap["gauges"] == {}

    def test_other_collector_errors_counted_not_fatal(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("boom")

        registry.register_collector("c1", broken)
        registry.snapshot()
        assert registry.stats()["collectors"] == 1
        assert registry.stats()["collector_errors"] == 1

    def test_unregister_is_idempotent(self):
        registry = MetricsRegistry()
        registry.register_collector("c1", lambda: {})
        assert registry.unregister_collector("c1") is True
        assert registry.unregister_collector("c1") is False


# ---------------------------------------------------------------------------
# the unified cache schema


class TestCacheStats:
    def test_legacy_dict_matches_historic_lru_shape(self):
        lru = ByteBudgetLRU(max_bytes=1024)
        lru.put("k", b"xxxx", size=4)
        lru.get("k")
        lru.get("missing")
        legacy = lru.stats()
        assert legacy == {
            "entries": 1,
            "bytes": 4,
            "max_bytes": 1024,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "hit_rate": 0.5,
        }
        struct = lru.stats_struct("test")
        assert struct.as_dict()["name"] == "test"
        assert struct.hit_rate == 0.5

    def test_with_extra_merges_without_mutating(self):
        stats = CacheStats(
            name="x", entries=0, bytes=0, max_bytes=None, max_entries=None,
            hits=0, misses=0, evictions=0,
        )
        extended = stats.with_extra({"invalidations": 2})
        assert extended.extra == {"invalidations": 2}
        assert stats.extra == {}

    def test_metric_samples_are_labelled_gauge_names(self):
        stats = CacheStats(
            name="result", entries=3, bytes=12, max_bytes=64, max_entries=None,
            hits=9, misses=1, evictions=0,
        )
        samples = stats.metric_samples({"tenant": "t"})
        key = 'repro_cache_entries{cache="result",tenant="t"}'
        assert samples[key] == 3.0
        assert samples['repro_cache_hit_rate{cache="result",tenant="t"}'] == 0.9


# ---------------------------------------------------------------------------
# the global switch


class TestEnabledFlag:
    def test_disabled_instruments_noop(self):
        registry = MetricsRegistry()
        counter = registry.counter("off_total", "test")
        hist = registry.histogram("off_seconds", "test")
        obs.set_enabled(False)
        try:
            counter.inc()
            hist.observe(1.0)
        finally:
            obs.set_enabled(True)
        assert counter.value == 0
        assert hist.snapshot()["count"] == 0
