"""Unit tests for bootstrap score intervals and PDP/ICE baselines."""

import numpy as np
import pytest

from repro.core.uncertainty import BootstrapScores, ScoreInterval
from repro.data.table import Column, Table
from repro.xai.pdp import ice_curves, partial_dependence


def _setup(n, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 3, n)
    z = rng.integers(0, 2, n)
    table = Table(
        [
            Column.from_codes("x", x, (0, 1, 2)),
            Column.from_codes("z", z, (0, 1)),
        ]
    )
    positive = (x + z) >= 2
    return table, positive


class TestBootstrapScores:
    def test_interval_contains_point(self):
        table, positive = _setup(3_000)
        boot = BootstrapScores(table, positive, n_bootstrap=30, seed=0)
        interval = boot.interval("sufficiency", {"x": 2}, {"x": 0})
        assert interval.lower - 0.05 <= interval.point <= interval.upper + 0.05

    def test_width_shrinks_with_sample_size(self):
        small_table, small_pos = _setup(300, seed=1)
        large_table, large_pos = _setup(10_000, seed=1)
        small = BootstrapScores(small_table, small_pos, n_bootstrap=30, seed=0)
        large = BootstrapScores(large_table, large_pos, n_bootstrap=30, seed=0)
        w_small = small.interval("necessity_sufficiency", {"x": 1}, {"x": 0}).width
        w_large = large.interval("necessity_sufficiency", {"x": 1}, {"x": 0}).width
        assert w_large < w_small

    def test_all_three_intervals(self):
        table, positive = _setup(2_000)
        boot = BootstrapScores(table, positive, n_bootstrap=20, seed=0)
        out = boot.intervals({"x": 2}, {"x": 0})
        assert set(out) == {"necessity", "sufficiency", "necessity_sufficiency"}
        for interval in out.values():
            assert 0.0 <= interval.lower <= interval.upper <= 1.0

    def test_levels_nest(self):
        table, positive = _setup(1_500)
        boot = BootstrapScores(table, positive, n_bootstrap=40, seed=0)
        narrow = boot.interval("sufficiency", {"x": 2}, {"x": 0}, level=0.5)
        wide = boot.interval("sufficiency", {"x": 2}, {"x": 0}, level=0.95)
        assert wide.width >= narrow.width - 1e-9

    def test_validation(self):
        table, positive = _setup(100)
        with pytest.raises(ValueError):
            BootstrapScores(table, positive, n_bootstrap=1)
        with pytest.raises(ValueError):
            BootstrapScores(table, positive[:-1])
        boot = BootstrapScores(table, positive, n_bootstrap=5)
        with pytest.raises(ValueError):
            boot.interval("sufficiency", {"x": 2}, {"x": 0}, level=1.5)

    def test_score_interval_str(self):
        s = ScoreInterval(0.5, 0.4, 0.6, 0.9, 10)
        assert "0.500" in str(s)
        assert s.width == pytest.approx(0.2)


class TestPartialDependence:
    def _predict(self, t):
        return (t.codes("x") + t.codes("z")) >= 2

    def test_monotone_rule_gives_monotone_pdp(self):
        table, _pos = _setup(4_000)
        pdp = partial_dependence(self._predict, table, "x")
        assert list(pdp.averages) == sorted(pdp.averages)

    def test_pdp_values_are_domain(self):
        table, _pos = _setup(1_000)
        pdp = partial_dependence(self._predict, table, "x")
        assert pdp.values == (0, 1, 2)
        assert pdp.as_dict()[2] > pdp.as_dict()[0]

    def test_range_reflects_relevance(self):
        table, _pos = _setup(4_000)
        relevant = partial_dependence(self._predict, table, "x").range
        # z matters less (only 2 values, weight 1 of the sum).
        other = partial_dependence(self._predict, table, "z").range
        assert relevant >= other

    def test_ice_matrix_shape(self):
        table, _pos = _setup(500)
        ice = ice_curves(self._predict, table, "x")
        assert ice.matrix.shape == (500, 3)

    def test_ice_mean_is_pdp(self):
        table, _pos = _setup(800)
        ice = ice_curves(self._predict, table, "x")
        pdp = partial_dependence(self._predict, table, "x")
        assert np.allclose(ice.partial_dependence.averages, pdp.averages)

    def test_heterogeneity_positive_for_interacting_rule(self):
        table, _pos = _setup(2_000)
        # x's effect depends on z: heterogeneous ICE curves.
        assert ice_curves(self._predict, table, "x").heterogeneity() > 0.05

    def test_subsampling_cap(self):
        table, _pos = _setup(5_000)
        ice = ice_curves(self._predict, table, "x", max_rows=100, seed=0)
        assert ice.matrix.shape[0] == 100
