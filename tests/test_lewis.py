"""Unit tests for the Lewis facade."""

import numpy as np
import pytest

from repro import Lewis
from repro.core.explanations import GlobalExplanation, LocalExplanation
from repro.core.recourse import Recourse


class TestConstruction:
    def test_positive_rate_matches_predictions(self, german_lewis, german_model):
        features = german_lewis.data.select(german_lewis.feature_names)
        # Lewis may have reordered domains; its own wrapper must undo that.
        rate = np.mean(german_lewis.predict_positive(features))
        assert german_lewis.positive_rate == pytest.approx(rate)

    def test_attributes_default_to_features_and_graph(self, german_lewis, german_bundle):
        assert set(german_lewis.attributes) == set(german_bundle.feature_names)

    def test_callable_model_requires_feature_names(self, german_bundle):
        with pytest.raises(ValueError):
            Lewis(lambda t: np.ones(len(t), bool), data=german_bundle.table)

    def test_callable_model_boolean_output(self, german_bundle):
        features = german_bundle.table.select(german_bundle.feature_names)
        lew = Lewis(
            lambda t: t.codes("savings") >= 2,
            data=features,
            feature_names=german_bundle.feature_names,
            infer_orderings=False,
        )
        assert lew.positive_rate == pytest.approx(
            (features.codes("savings") >= 2).mean()
        )

    def test_unordered_domains_get_reordered(self, german_lewis):
        # 'purpose' is generated unordered; after inference it is ordered.
        assert german_lewis.data.column("purpose").ordered

    def test_negative_positive_indices_partition(self, german_lewis):
        neg = set(german_lewis.negative_indices().tolist())
        pos = set(german_lewis.positive_indices().tolist())
        assert neg.isdisjoint(pos)
        assert len(neg) + len(pos) == len(german_lewis.data)


class TestScores:
    def test_score_label_level_access(self, german_lewis):
        triple = german_lewis.score("savings", ">1000 DM", "<100 DM")
        assert 0.0 <= triple.sufficiency <= 1.0

    def test_score_with_context(self, german_lewis):
        triple = german_lewis.score(
            "status", ">200 DM", "<0 DM", context={"sex": "Male"}
        )
        assert 0.0 <= triple.necessity_sufficiency <= 1.0

    def test_score_bounds_contain_estimates_mostly(self, german_lewis):
        triple = german_lewis.score("savings", ">1000 DM", "<100 DM")
        bounds = german_lewis.score_bounds("savings", ">1000 DM", "<100 DM")
        lo, hi = bounds.necessity_sufficiency
        assert lo - 0.15 <= triple.necessity_sufficiency <= hi + 0.15


class TestExplanations:
    def test_global_explanation_type_and_coverage(self, german_lewis):
        exp = german_lewis.explain_global()
        assert isinstance(exp, GlobalExplanation)
        assert len(exp.attribute_scores) == len(german_lewis.attributes)

    def test_contextual_requires_nonempty(self, german_lewis):
        with pytest.raises(ValueError):
            german_lewis.explain_context({})

    def test_contextual_skips_context_attribute(self, german_lewis):
        exp = german_lewis.explain_context({"sex": "Male"})
        assert "sex" not in {s.attribute for s in exp.attribute_scores}

    def test_local_by_index(self, german_lewis):
        idx = int(german_lewis.negative_indices()[0])
        exp = german_lewis.explain_local(index=idx)
        assert isinstance(exp, LocalExplanation)
        assert not exp.outcome_positive

    def test_local_by_individual(self, german_lewis):
        row = german_lewis.data.row(0)
        exp = german_lewis.explain_local(individual=row)
        assert set(c.attribute for c in exp.contributions) == set(
            german_lewis.attributes
        )

    def test_local_requires_exactly_one_input(self, german_lewis):
        with pytest.raises(ValueError):
            german_lewis.explain_local()
        with pytest.raises(ValueError):
            german_lewis.explain_local(index=0, individual={"sex": "Male"})

    def test_local_contributions_in_unit_interval(self, german_lewis):
        exp = german_lewis.explain_local(index=int(german_lewis.negative_indices()[0]))
        for c in exp.contributions:
            assert 0.0 <= c.positive <= 1.0
            assert 0.0 <= c.negative <= 1.0


class TestRecourse:
    def test_recourse_for_negative_individual(self, german_lewis, german_bundle):
        idx = int(german_lewis.negative_indices()[0])
        recourse = german_lewis.recourse(
            idx, actionable=german_bundle.actionable, alpha=0.7
        )
        assert isinstance(recourse, Recourse)
        assert recourse.estimated_sufficiency >= 0.7 - 1e-9
        touched = {a.attribute for a in recourse.actions}
        assert touched <= set(german_bundle.actionable)

    def test_recourse_solver_cached(self, german_lewis, german_bundle):
        idx = int(german_lewis.negative_indices()[0])
        german_lewis.recourse(idx, actionable=german_bundle.actionable, alpha=0.6)
        assert len(german_lewis._recourse_solvers) >= 1
        before = dict(german_lewis._recourse_solvers)
        german_lewis.recourse(idx, actionable=german_bundle.actionable, alpha=0.7)
        assert dict(german_lewis._recourse_solvers) == before

    def test_recourse_actions_raise_model_probability(
        self, german_lewis, german_model, german_bundle
    ):
        """Applying the actions (others fixed) must raise P(positive).

        This is a *conservative* check: the causal sufficiency claim also
        lets descendants of the actionable attributes respond, which can
        only help. Exact SCM-level validation lives in
        test_integration.py::TestRecourseGroundTruth.
        """
        improved = 0
        tried = 0
        features = german_lewis.data.select(german_lewis.feature_names)
        for idx in german_lewis.negative_indices()[:20]:
            try:
                recourse = german_lewis.recourse(
                    int(idx), actionable=german_bundle.actionable, alpha=0.7
                )
            except Exception:
                continue
            if recourse.is_empty:
                continue
            tried += 1
            row = german_lewis.data.row(int(idx))
            before = row.copy()
            row.update(recourse.as_dict())

            def prob_of(decoded):
                single = features.take(np.array([0]))
                for name in features.names:
                    col = single.column(name)
                    code = german_lewis.data.column(name).code_of(decoded[name])
                    single = single.with_column(
                        col.replaced(np.array([code], dtype=np.int64))
                    )
                remapped = german_lewis._to_model_space(single)
                return german_model.predict_proba(remapped)[0, 1]

            improved += int(prob_of(row) > prob_of(before))
        assert tried >= 3
        assert improved / tried >= 0.8


class TestRegressionBlackBox:
    def test_threshold_positive(self, german_bundle):
        from repro import fit_table_model, load_dataset, train_test_split

        bundle = load_dataset("german_syn", n_rows=2_000, seed=0)
        train, test = train_test_split(bundle.table, seed=0)
        model = fit_table_model(
            "random_forest_regressor",
            train,
            bundle.feature_names,
            bundle.label,
            seed=0,
            n_estimators=10,
        )
        lew = Lewis(model, data=test, graph=bundle.graph, threshold=0.5)
        values = model.predict_value(test.select(bundle.feature_names))
        assert lew.positive_rate == pytest.approx((values >= 0.5).mean())
