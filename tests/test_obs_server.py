"""Observability at the HTTP edge: /metrics, /v1/traces, request ids."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.obs import tracing
from repro.service.server import create_server
from repro.service.session import ExplainerSession
from repro.service.updates import TableDelta
from repro.store.wal import DeltaLog


def tiny_model(features: Table) -> np.ndarray:
    return (features.codes("a") + features.codes("b")) >= 2


@pytest.fixture(scope="module")
def server():
    rng = np.random.default_rng(11)
    n = 200
    table = Table.from_dict(
        {
            "a": rng.integers(0, 3, n).tolist(),
            "b": rng.integers(0, 3, n).tolist(),
            "sex": rng.choice(["F", "M"], n).tolist(),
        },
        domains={"a": [0, 1, 2], "b": [0, 1, 2], "sex": ["F", "M"]},
    )
    lewis = Lewis(
        tiny_model, data=table, feature_names=["a", "b", "sex"],
        infer_orderings=False,
    )
    session = ExplainerSession(lewis, default_actionable=["a", "b"])
    httpd = create_server(session, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    host, port = httpd.server_address
    yield f"http://{host}:{port}"
    httpd.shutdown()
    httpd.server_close()
    session.close()


def get(base: str, path: str):
    with urllib.request.urlopen(base + path) as resp:
        return resp.status, resp.headers, resp.read()


def post(base: str, path: str, payload: dict):
    req = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestMetricsEndpoint:
    def test_prometheus_families_cover_every_subsystem(self, server):
        post(server, "/v1/explain/global", {})
        status, headers, body = get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = body.decode()
        families = {
            line.split()[2] for line in text.splitlines()
            if line.startswith("# TYPE")
        }
        for prefix in (
            "repro_cache", "repro_batcher", "repro_engine", "repro_solver",
            "repro_wal", "repro_monitor", "repro_http", "repro_registry",
        ):
            assert any(f.startswith(prefix) for f in families), prefix

    def test_v1_metrics_alias(self, server):
        status, headers, _body = get(server, "/v1/metrics")
        assert status == 200
        assert "version=0.0.4" in headers["Content-Type"]

    def test_http_counter_moves(self, server):
        def count():
            _s, _h, body = get(server, "/metrics")
            total = 0.0
            for line in body.decode().splitlines():
                if line.startswith("repro_http_requests_total{"):
                    total += float(line.rsplit(" ", 1)[1])
            return total

        before = count()
        post(server, "/v1/explain/global", {})
        assert count() > before


class TestRequestIds:
    def test_success_carries_request_id_and_timing_breakdown(self, server):
        status, body = post(server, "/v1/explain/global", {})
        assert status == 200
        assert len(body["request_id"]) == 16
        assert body["elapsed_ms"] >= body["compute_ms"] >= 0.0
        assert body["queue_ms"] >= 0.0

    def test_cache_hit_reports_zero_dispatch_time(self, server):
        post(server, "/v1/explain/global", {"max_pairs_per_attribute": 4})
        status, body = post(
            server, "/v1/explain/global", {"max_pairs_per_attribute": 4}
        )
        assert status == 200 and body["cached"]
        assert body["queue_ms"] == 0.0 and body["compute_ms"] == 0.0

    def test_client_error_carries_request_id(self, server):
        status, body = post(server, "/v1/explain/local", {})
        assert status == 400
        assert "error" in body and len(body["request_id"]) == 16

    def test_not_found_carries_request_id(self, server):
        status, body = post(server, "/v1/nope/nothing", {})
        assert status == 404
        assert len(body["request_id"]) == 16

    def test_two_requests_get_distinct_ids(self, server):
        _s1, a = post(server, "/v1/explain/global", {})
        _s2, b = post(server, "/v1/explain/global", {})
        assert a["request_id"] != b["request_id"]


class TestTracesEndpoint:
    def test_response_request_id_resolves_to_a_finished_trace(self, server):
        _status, body = post(server, "/v1/explain/local", {"index": 0})
        rid = body["request_id"]
        status, _headers, raw = get(server, f"/v1/traces?id={rid}")
        assert status == 200
        record = json.loads(raw)["traces"][0]
        assert record["trace_id"] == rid
        assert record["name"] == "POST /v1/explain/local"
        assert record["status"] == "ok"

    def test_recourse_batch_workers_2_shows_chunk_and_merge_spans(self, server):
        tracing.get_tracer().clear()
        status, body = post(
            server,
            "/v1/recourse/batch",
            {"workers": 2, "alpha": 0.8},
        )
        assert status == 200
        _s, _h, raw = get(server, f"/v1/traces?id={body['request_id']}")
        record = json.loads(raw)["traces"][0]
        names = [s["name"] for s in record["spans"]]
        assert "queue_wait" in names
        assert "compute" in names
        assert "solve_chunk" in names
        assert "recourse_merge" in names
        chunk = next(s for s in record["spans"] if s["name"] == "solve_chunk")
        assert chunk["tags"]["items"] >= 1

    def test_query_filters_by_min_ms_and_limit(self, server):
        for _ in range(3):
            post(server, "/v1/explain/global", {})
        _s, _h, raw = get(server, "/v1/traces?min_ms=0&limit=2")
        payload = json.loads(raw)
        assert len(payload["traces"]) <= 2
        _s, _h, raw = get(server, "/v1/traces?min_ms=1e12")
        assert json.loads(raw)["traces"] == []

    def test_unknown_trace_is_404_with_request_id(self, server):
        try:
            get(server, "/v1/traces?id=ffffffffffffffff")
            raise AssertionError("expected HTTP 404")
        except urllib.error.HTTPError as exc:
            body = json.loads(exc.read())
            assert exc.code == 404
            assert "request_id" in body


class TestStatsBackCompat:
    def test_legacy_keys_survive_and_new_sections_appear(self, server):
        _s, _h, raw = get(server, "/v1/stats")
        stats = json.loads(raw)
        for legacy in (
            "tenant", "fingerprint", "table_version", "n_rows",
            "requests_served", "cache", "engine", "local_models", "scheduler",
        ):
            assert legacy in stats, legacy
        # old flat cache shape intact
        for key in ("entries", "bytes", "hits", "misses", "hit_rate"):
            assert key in stats["cache"], key
        # new unified sections
        assert set(stats["caches"]) == {"result", "tensor", "local_model"}
        for shape in stats["caches"].values():
            assert {"name", "entries", "hits", "misses"} <= set(shape)
        assert "metrics" in stats and "counters" in stats["metrics"]
        assert "tracing" in stats and "finished" in stats["tracing"]


class TestWalRequestIds:
    def test_update_stamps_request_id_into_wal(self, tmp_path, server):
        # request ids reach the WAL through the durable session; exercise
        # the log directly the way DurableSession.update does.
        log = DeltaLog(tmp_path / "t.jsonl")
        delta = {"insert": [{"a": 1, "b": 0, "sex": "F"}], "delete": []}
        with tracing.trace("update") as tid:
            seq = log.append(
                TableDelta.from_json(delta), request_id=tracing.current_trace_id()
            )
        log.close()
        records = DeltaLog(tmp_path / "t.jsonl").replay_annotated()
        assert records[0][0] == seq
        assert records[0][2] == tid

    def test_request_id_survives_compaction(self, tmp_path):
        log = DeltaLog(tmp_path / "t.jsonl")
        log.append(TableDelta(insert=({"a": 1},)), request_id="aaaa")
        log.append(TableDelta(insert=({"a": 2},)), request_id="bbbb")
        log.append(TableDelta(insert=({"a": 0},)))  # anonymous update
        log.truncate_through(1)
        log.close()
        reopened = DeltaLog(tmp_path / "t.jsonl")
        annotated = reopened.replay_annotated()
        assert [(seq, rid) for seq, _d, rid in annotated] == [
            (2, "bbbb"), (3, None),
        ]

    def test_old_format_records_still_verify(self, tmp_path):
        # a log written before request ids existed (no "request_id" key)
        # must replay cleanly: the CRC digest only covers the field when
        # it is present.
        log = DeltaLog(tmp_path / "t.jsonl")
        log.append(TableDelta(insert=({"a": 1},)))
        log.close()
        raw = (tmp_path / "t.jsonl").read_text()
        assert "request_id" not in raw
        reopened = DeltaLog(tmp_path / "t.jsonl")
        assert reopened.last_seq == 1
        assert reopened.replay_annotated()[0][2] is None
