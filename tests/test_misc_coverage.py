"""Tests for remaining branches: SHAP extra columns, identification
caching, statement rendering edge cases, pipeline guard rails."""

import numpy as np
import pytest

from repro.causal.identification import BackdoorAdjustment
from repro.core.explanations import (
    AttributeScore,
    GlobalExplanation,
    LocalContribution,
    LocalExplanation,
)
from repro.data.table import Column, Table
from repro.estimation.probability import FrequencyEstimator
from repro.xai.shap import KernelShapExplainer


class TestShapExtraColumns:
    def test_unexplained_columns_passed_through(self):
        """Background columns outside `attributes` still reach the model."""
        rng = np.random.default_rng(0)
        n = 1_000
        a = rng.integers(0, 2, n)
        extra = rng.integers(0, 2, n)
        table = Table(
            [
                Column.from_codes("a", a, (0, 1)),
                Column.from_codes("extra", extra, (0, 1)),
            ]
        )

        seen_columns = set()

        def predict(t):
            seen_columns.update(t.names)
            return (t.codes("a") + t.codes("extra")) >= 1

        shap = KernelShapExplainer(
            predict, table, attributes=["a"], n_background=20, seed=0
        )
        exp = shap.explain({"a": 1})
        assert "extra" in seen_columns
        assert list(exp.values) == ["a"]

    def test_base_value_cached(self):
        rng = np.random.default_rng(1)
        table = Table([Column.from_codes("a", rng.integers(0, 2, 500), (0, 1))])
        calls = []

        def predict(t):
            calls.append(len(t))
            return t.codes("a") == 1

        shap = KernelShapExplainer(predict, table, n_background=10, seed=0)
        first = shap.base_value()
        n_calls = len(calls)
        second = shap.base_value()
        assert first == second
        assert len(calls) == n_calls


class TestIdentificationCaching:
    def test_adjustment_set_cached_per_context(self, toy_scm, toy_table):
        est = FrequencyEstimator(toy_table)
        adj = BackdoorAdjustment(est, toy_scm.diagram, outcome="Y")
        a = adj.adjustment_set(["X"])
        b = adj.adjustment_set(["X"], context=["Z"])
        # Different cache keys: context changes the admissible set.
        assert a == ["Z"]
        assert b == [] or b is None or "Z" not in (b or [])

    def test_interventional_with_multi_treatment(self, toy_scm, toy_table):
        est = FrequencyEstimator(toy_table)
        adj = BackdoorAdjustment(est, toy_scm.diagram, outcome="Y")
        value = adj.interventional(1, {"X": 2, "Z": 1})
        assert 0.0 <= value <= 1.0


class TestStatementEdgeCases:
    def test_global_statements_skip_missing_pairs(self):
        exp = GlobalExplanation(
            context={},
            attribute_scores=[
                AttributeScore("a", 0.5, 0.5, 0.5, best_pair_sufficiency=None)
            ],
        )
        assert exp.statements() == []

    def test_local_statements_skip_zero_contributions(self):
        exp = LocalExplanation(
            individual={},
            outcome_positive=False,
            contributions=[
                LocalContribution("a", "v", positive=0.0, negative=0.0)
            ],
        )
        assert exp.statements() == []

    def test_local_statements_respect_top(self):
        contributions = [
            LocalContribution(f"a{i}", "v", 0.0, 0.5 + i / 100, negative_foil="w")
            for i in range(5)
        ]
        exp = LocalExplanation({}, False, contributions)
        assert len(exp.statements(top=2)) == 2
        # Highest negative contribution first.
        assert "a4" in exp.statements(top=1)[0]


class TestFrequencyEstimatorLimits:
    def test_mask_cache_is_lru_bounded(self):
        rng = np.random.default_rng(2)
        table = Table(
            [Column.from_codes("x", rng.integers(0, 50, 500), tuple(range(50)))]
        )
        est = FrequencyEstimator(table)
        est.MASK_CACHE_SIZE = 16
        # Hammer the cache with more keys than its limit.
        for code in range(50):
            est._mask({"x": code})
        assert len(est._mask_cache) <= 16
        # Least-recently-used keys were evicted, recent ones kept.
        assert (("x", 49),) in est._mask_cache
        assert (("x", 0),) not in est._mask_cache

    def test_trivial_mask_is_cached(self, small_table):
        est = FrequencyEstimator(small_table)
        first = est._mask({})
        assert first.all() and len(first) == len(small_table)
        assert est._mask({}) is first

    def test_n_rows_property(self, small_table):
        assert FrequencyEstimator(small_table).n_rows == 8
