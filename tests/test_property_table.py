"""Property-based tests for the tabular container (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.table import Column, Table

#: strategy: a small column as (cardinality, codes)
columns = st.integers(min_value=1, max_value=5).flatmap(
    lambda card: st.lists(
        st.integers(min_value=0, max_value=card - 1), min_size=1, max_size=60
    ).map(lambda codes: (card, codes))
)


@given(columns)
def test_decode_encode_roundtrip(data):
    card, codes = data
    categories = [f"v{i}" for i in range(card)]
    col = Column.from_codes("x", np.array(codes), categories)
    rebuilt = Column.from_values("x", col.decode(), categories)
    assert rebuilt.codes.tolist() == codes


@given(columns)
def test_value_counts_total(data):
    card, codes = data
    col = Column.from_codes("x", np.array(codes), [f"v{i}" for i in range(card)])
    assert sum(col.value_counts().values()) == len(codes)


@given(columns, st.randoms(use_true_random=False))
def test_with_order_never_changes_decoded_values(data, rnd):
    card, codes = data
    categories = [f"v{i}" for i in range(card)]
    col = Column.from_codes("x", np.array(codes), categories, ordered=False)
    perm = list(categories)
    rnd.shuffle(perm)
    assert col.with_order(perm).decode() == col.decode()


@given(columns, st.data())
def test_take_preserves_values(data, draw):
    card, codes = data
    col = Column.from_codes("x", np.array(codes), list(range(card)))
    indices = draw.draw(
        st.lists(
            st.integers(min_value=0, max_value=len(codes) - 1),
            min_size=0,
            max_size=20,
        )
    )
    taken = col.take(np.array(indices, dtype=int))
    assert taken.decode() == [col.decode()[i] for i in indices]


@given(columns)
def test_mask_filter_consistency(data):
    card, codes = data
    table = Table([Column.from_codes("x", np.array(codes), list(range(card)))])
    for value in range(card):
        mask = table.mask(x=value)
        filtered = table.filter(x=value)
        assert int(mask.sum()) == len(filtered)
        assert all(v == value for v in filtered.column("x").decode())


@given(columns)
@settings(max_examples=30)
def test_concat_rows_length_additive(data):
    card, codes = data
    table = Table([Column.from_codes("x", np.array(codes), list(range(card)))])
    assert len(table.concat_rows(table)) == 2 * len(table)


@given(columns)
@settings(max_examples=30)
def test_group_sizes_partition_rows(data):
    card, codes = data
    table = Table([Column.from_codes("x", np.array(codes), list(range(card)))])
    sizes = table.group_sizes(["x"])
    assert sum(sizes.values()) == len(table)
