"""Property-based tests for the IP solver and ML substrate invariants."""

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.models.forest import RandomForestClassifier
from repro.models.linear import LogisticRegression
from repro.models.tree import DecisionTreeClassifier
from repro.opt.branch_and_bound import solve_binary_program
from repro.opt.integer_program import IntegerProgram
from repro.utils.exceptions import RecourseInfeasibleError


def brute_force(program):
    c, A_ub, b_ub, A_eq, b_eq = program.matrices()
    n = program.n_variables
    best = np.inf
    for bits in itertools.product([0, 1], repeat=n):
        x = np.array(bits, dtype=float)
        if A_ub is not None and (A_ub @ x > b_ub + 1e-9).any():
            continue
        if A_eq is not None and not np.allclose(A_eq @ x, b_eq, atol=1e-9):
            continue
        best = min(best, float(c @ x))
    return best


ip_instances = st.tuples(
    st.integers(min_value=1, max_value=7),  # variables
    st.integers(min_value=0, max_value=3),  # constraints
    st.integers(min_value=0, max_value=10_000),  # seed
)


@given(ip_instances)
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_branch_and_bound_matches_brute_force(params):
    n, m, seed = params
    rng = np.random.default_rng(seed)
    program = IntegerProgram()
    for i in range(n):
        program.add_variable(i, cost=float(rng.normal()))
    for _ in range(m):
        coeffs = {i: float(rng.normal()) for i in range(n)}
        program.add_le_constraint(coeffs, float(rng.uniform(-0.5, 1.5)))
    reference = brute_force(program)
    if np.isinf(reference):
        with pytest.raises(RecourseInfeasibleError):
            solve_binary_program(program)
    else:
        solution = solve_binary_program(program)
        assert solution.objective == pytest.approx(reference, abs=1e-6)
        # The returned assignment must itself be feasible and attain it.
        x = np.array([solution.values[i] for i in range(n)], dtype=float)
        c, A_ub, b_ub, _aeq, _beq = program.matrices()
        if A_ub is not None:
            assert (A_ub @ x <= b_ub + 1e-6).all()
        assert float(c @ x) == pytest.approx(solution.objective, abs=1e-9)


classification_data = st.tuples(
    st.integers(min_value=30, max_value=120),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=10_000),
)


@given(classification_data)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_tree_proba_is_distribution(params):
    n, d, seed = params
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] + 0.3 * rng.normal(size=n) > 0).astype(int)
    if len(np.unique(y)) < 2:
        return
    tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
    proba = tree.predict_proba(X)
    assert np.allclose(proba.sum(axis=1), 1.0)
    assert (proba >= 0).all()


@given(classification_data)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_forest_prediction_in_training_label_set(params):
    n, d, seed = params
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = rng.integers(0, 3, size=n)
    if len(np.unique(y)) < 2:
        return
    forest = RandomForestClassifier(n_estimators=4, max_depth=3, seed=0).fit(X, y)
    assert set(forest.predict(X)) <= set(np.unique(y))


@given(classification_data)
@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_logistic_proba_bounds(params):
    n, d, seed = params
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    y = (X[:, 0] > 0).astype(int)
    if len(np.unique(y)) < 2:
        return
    model = LogisticRegression().fit(X, y)
    proba = model.predict_proba(X)
    assert (proba > 0).all() and (proba < 1).all()
    assert np.allclose(proba.sum(axis=1), 1.0)
