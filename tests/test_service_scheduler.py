"""Unit tests for the micro-batching request dispatcher."""

from __future__ import annotations

import threading

import pytest

from repro.service.scheduler import MicroBatcher


def echo_handler(payloads):
    return [("echo", p) for p in payloads]


class TestSynchronousMode:
    def test_run_dispatches_inline(self):
        batcher = MicroBatcher({"echo": echo_handler}, start=False)
        assert batcher.run("echo", 1) == ("echo", 1)
        assert batcher.stats()["requests"] == 1

    def test_flush_serves_pending_futures_in_one_batch(self):
        batcher = MicroBatcher({"echo": echo_handler}, start=False)
        futures = [batcher.submit("echo", i) for i in range(5)]
        served = batcher.flush()
        assert served == 5
        assert [f.result(timeout=1) for f in futures] == [("echo", i) for i in range(5)]
        assert batcher.stats()["batches"] == 1
        assert batcher.stats()["largest_batch"] == 5

    def test_unknown_kind_rejected(self):
        batcher = MicroBatcher({"echo": echo_handler}, start=False)
        with pytest.raises(KeyError):
            batcher.submit("nope", 1)

    def test_handler_exception_propagates_to_all_waiters(self):
        def boom(payloads):
            raise RuntimeError("broken handler")

        batcher = MicroBatcher({"boom": boom, "echo": echo_handler}, start=False)
        bad = [batcher.submit("boom", i) for i in range(3)]
        good = batcher.submit("echo", "fine")
        batcher.flush()
        for future in bad:
            with pytest.raises(RuntimeError, match="broken handler"):
                future.result(timeout=1)
        assert good.result(timeout=1) == ("echo", "fine")

    def test_misaligned_handler_output_is_an_error(self):
        batcher = MicroBatcher({"short": lambda ps: []}, start=False)
        future = batcher.submit("short", 1)
        batcher.flush()
        with pytest.raises(RuntimeError, match="results"):
            future.result(timeout=1)

    def test_max_batch_splits_rounds(self):
        batcher = MicroBatcher({"echo": echo_handler}, max_batch=2, start=False)
        futures = [batcher.submit("echo", i) for i in range(5)]
        batcher.flush()
        assert all(f.result(timeout=1)[1] == i for i, f in enumerate(futures))
        assert batcher.stats()["batches"] == 3
        assert batcher.stats()["largest_batch"] == 2


class TestBackgroundMode:
    def test_concurrent_submissions_coalesce(self):
        calls: list[int] = []
        gate = threading.Event()

        def handler(payloads):
            calls.append(len(payloads))
            return payloads

        batcher = MicroBatcher({"echo": handler}, window=0.05, start=True)
        try:
            results = [None] * 8
            gate.set()

            def worker(i):
                results[i] = batcher.run("echo", i)

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=5)
            assert results == list(range(8))
            # The 50 ms window must have coalesced at least two requests
            # into one dispatch round.
            assert max(calls) >= 2
            assert batcher.stats()["requests"] == 8
        finally:
            batcher.close()

    def test_close_is_idempotent_and_flushes(self):
        batcher = MicroBatcher({"echo": echo_handler}, start=True)
        batcher.close()
        batcher.close()
        assert batcher.stats()["background"] is False

    def test_context_manager(self):
        with MicroBatcher({"echo": echo_handler}, start=True) as batcher:
            assert batcher.run("echo", "x") == ("echo", "x")
