"""Tracing: span nesting, rings, cross-thread and cross-process propagation."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.lewis import Lewis
from repro.core.recourse import RecourseSolver
from repro.core.scores import ScoreEstimator
from repro.data.table import Table
from repro.obs import tracing
from repro.obs.tracing import Tracer
from repro.service.session import ExplainerSession


@pytest.fixture(autouse=True)
def clean_tracer():
    tracing.get_tracer().clear()
    yield
    tracing.get_tracer().clear()


# ---------------------------------------------------------------------------
# core span mechanics


class TestSpans:
    def test_trace_yields_id_and_finishes_into_ring(self):
        with tracing.trace("t") as tid:
            assert tid is not None
        record = tracing.get_tracer().get(tid)
        assert record is not None
        assert record["status"] == "ok"
        assert record["n_spans"] == 1  # the root span

    def test_child_spans_parent_to_the_root(self):
        with tracing.trace("root") as tid:
            with tracing.span("child"):
                with tracing.span("grandchild"):
                    pass
        record = tracing.get_tracer().get(tid)
        by_name = {s["name"]: s for s in record["spans"]}
        root = by_name["root"]
        assert root["parent_id"] is None
        assert by_name["child"]["parent_id"] == root["span_id"]
        assert by_name["grandchild"]["parent_id"] == by_name["child"]["span_id"]

    def test_span_outside_trace_is_noop(self):
        before = tracing.get_tracer().stats()
        with tracing.span("orphan"):
            pass
        after = tracing.get_tracer().stats()
        assert after["started"] == before["started"]
        assert after["active"] == 0 and after["retained"] == 0

    def test_exception_marks_trace_status(self):
        with pytest.raises(RuntimeError):
            with tracing.trace("boom") as tid:
                raise RuntimeError("nope")
        assert tracing.get_tracer().get(tid)["status"] == "error:RuntimeError"

    def test_disabled_tracing_yields_none(self):
        from repro.obs import metrics as obs

        obs.set_enabled(False)
        try:
            with tracing.trace("off") as tid:
                assert tid is None
        finally:
            obs.set_enabled(True)

    def test_ring_is_bounded_and_slow_ring_survives_fast_traffic(self):
        tracer = Tracer(capacity=4, slow_capacity=2, slow_ms=50.0)
        with tracing.trace("slow-one", tracer=tracer) as slow_id:
            pass
        # forge slowness: replay the finish with a long duration
        tracer.clear()
        tracer.begin(slow_id, "slow-one")
        tracer.finish(slow_id, duration_ms=120.0)
        for i in range(10):
            tid = tracing.new_id()
            tracer.begin(tid, f"fast-{i}")
            tracer.finish(tid, duration_ms=1.0)
        stats = tracer.stats()
        assert stats["retained"] == 4
        assert tracer.get(slow_id) is not None  # held by the slow ring
        assert tracer.query(slow_only=True)[0]["trace_id"] == slow_id

    def test_attach_carries_context_to_another_thread(self):
        seen = {}

        def worker(ctx):
            with tracing.attach(ctx):
                seen["trace_id"] = tracing.current_trace_id()
                tracing.record_span(
                    tracing.current_context(), "threaded", 1.5
                )

        with tracing.trace("cross-thread") as tid:
            t = threading.Thread(target=worker, args=(tracing.current_context(),))
            t.start()
            t.join()
        assert seen["trace_id"] == tid
        record = tracing.get_tracer().get(tid)
        assert "threaded" in [s["name"] for s in record["spans"]]

    def test_record_span_without_context_is_noop(self):
        # the orphan counter is cumulative across the process (clear()
        # drops rings, not counters), so assert on the delta
        before = tracing.get_tracer().stats()["orphan_spans"]
        tracing.record_span(None, "nothing", 1.0)
        assert tracing.get_tracer().stats()["orphan_spans"] == before


# ---------------------------------------------------------------------------
# propagation through the micro-batcher (thread boundary)


def _tiny_session() -> ExplainerSession:
    rng = np.random.default_rng(3)
    n = 120
    table = Table.from_dict(
        {
            "a": rng.integers(0, 3, n).tolist(),
            "b": rng.integers(0, 3, n).tolist(),
        },
        domains={"a": [0, 1, 2], "b": [0, 1, 2]},
    )

    def model(features):
        return (features.codes("a") + features.codes("b")) >= 2

    lewis = Lewis(model, data=table, feature_names=["a", "b"], infer_orderings=False)
    return ExplainerSession(lewis, background=True)


class TestBatcherPropagation:
    def test_queue_wait_and_compute_spans_reach_the_trace(self):
        session = _tiny_session()
        try:
            with tracing.trace("request") as tid:
                session.explain_global()
        finally:
            session.close()
        record = tracing.get_tracer().get(tid)
        names = [s["name"] for s in record["spans"]]
        assert "queue_wait" in names
        assert "compute" in names
        compute = next(s for s in record["spans"] if s["name"] == "compute")
        assert compute["tags"]["kind"] == "explain_global"


# ---------------------------------------------------------------------------
# propagation through the recourse process pool (process boundary)


def _pool_solver():
    rng = np.random.default_rng(4)
    n = 400
    table = Table.from_codes(
        {
            "skill": rng.integers(0, 4, n),
            "hours": rng.integers(0, 4, n),
            "degree": rng.integers(0, 3, n),
        },
        domains={"skill": [0, 1, 2, 3], "hours": [0, 1, 2, 3], "degree": [0, 1, 2]},
    )
    z = table.codes("skill") + table.codes("hours") + 2 * table.codes("degree")
    estimator = ScoreEstimator(table, z >= 5)
    solver = RecourseSolver(estimator, ["skill", "hours", "degree"])
    solver.parallel_threshold = 1
    rows = [
        estimator.table.row_codes(i)
        for i in range(estimator.table.n_rows)
        if not estimator._positive[i]
    ]
    return solver, rows[:80]


class TestPoolPropagation:
    def test_trace_id_survives_solve_batch_workers_2(self, monkeypatch):
        # small chunks force several payloads so the pool genuinely
        # partitions the work across worker processes
        monkeypatch.setattr(
            "repro.core.recourse.adaptive_chunk_size", lambda *a, **k: 5
        )
        solver, rows = _pool_solver()
        with tracing.trace("audit") as tid:
            out = solver.solve_batch(
                rows, alpha=0.6, on_infeasible="none", workers=2
            )
        assert len(out) == len(rows)
        assert solver.solution_memo_stats()["parallel_batches"] == 1
        record = tracing.get_tracer().get(tid)
        chunks = [s for s in record["spans"] if s["name"] == "solve_chunk"]
        assert len(chunks) >= 2  # several chunks, each timed in its worker
        assert all(s["duration_ms"] >= 0.0 for s in chunks)
        assert sum(s["tags"]["items"] for s in chunks) >= len(chunks)
        merge = [s for s in record["spans"] if s["name"] == "recourse_merge"]
        assert len(merge) == 1

    def test_inline_path_also_times_chunks(self):
        solver, rows = _pool_solver()
        with tracing.trace("audit-inline") as tid:
            solver.solve_batch(rows, alpha=0.6, on_infeasible="none")
        record = tracing.get_tracer().get(tid)
        assert any(s["name"] == "solve_chunk" for s in record["spans"])

    def test_untraced_solve_batch_returns_plain_results(self):
        solver, rows = _pool_solver()
        # orphan counter is cumulative across the process; assert delta
        before = tracing.get_tracer().stats()["orphan_spans"]
        out = solver.solve_batch(rows, alpha=0.6, on_infeasible="none")
        assert len(out) == len(rows)
        assert tracing.get_tracer().stats()["orphan_spans"] == before
