"""Injected storage failures: every crash point recovers or refuses loudly.

Satellite contract for the fault-injection PR: under any injected
``OSError`` / torn write / fsync failure in ``DeltaLog.append``,
checkpoint compaction, or ``ArtifactStore`` writes, the store either
replays cleanly (acknowledged records only, sequence numbers intact) or
refuses with a typed error — it never loads corrupt state and never
silently drops acknowledged data.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.faults as faults
from repro.service.updates import TableDelta
from repro.store import ArtifactStore, DeltaLog
from repro.utils.exceptions import (
    CorruptArtifactError,
    DegradedError,
    StoreError,
)


def delta(insert=(), delete=()):
    return TableDelta(insert=tuple(insert), delete=tuple(delete))


ROW = {"a": 1, "b": 0}
APPEND_POINTS = ("wal.append.write", "wal.append.torn", "wal.append.fsync")


class TestWalAppendFaults:
    @pytest.mark.parametrize("point", APPEND_POINTS)
    def test_crash_point_degrades_then_heals(self, tmp_path, point):
        path = tmp_path / "t.jsonl"
        log = DeltaLog(path)
        assert log.append(delta(insert=[ROW])) == 1

        with faults.plan({point: {"once": True}}):
            with pytest.raises(DegradedError):
                log.append(delta(delete=[0]))
            # Degraded mode is sticky: the next append refuses too, even
            # though the fault plan would no longer fire.
            assert log.degraded is not None
            with pytest.raises(DegradedError, match="degraded"):
                log.append(delta(delete=[0]))

        log.reopen()
        assert log.degraded is None
        # write/torn faults leave no complete record, so seq 2 is reused;
        # an fsync fault fails *after* the complete line hit the file, so
        # reopen adopts that record (crash-after-write-before-ack) and
        # the next append takes seq 3. Either way the history is clean.
        adopted = point == "wal.append.fsync"
        assert log.append(delta(delete=[0])) == (3 if adopted else 2)
        log.close()

        recovered = DeltaLog(path)
        seqs = [seq for seq, _d in recovered.replay()]
        assert seqs == ([1, 2, 3] if adopted else [1, 2])
        assert recovered.replay()[-1][1].delete == (0,)

    def test_torn_write_leaves_no_partial_record_after_reopen(self, tmp_path):
        path = tmp_path / "t.jsonl"
        log = DeltaLog(path)
        log.append(delta(insert=[ROW]))
        with faults.plan({"wal.append.torn": {"once": True}}):
            with pytest.raises(DegradedError):
                log.append(delta(insert=[{"a": 2, "b": 3}]))
        # The torn half-record is on disk right now; reopen truncates it.
        log.reopen()
        log.close()
        fresh = DeltaLog(path)
        records = fresh.replay()
        assert len(records) == 1 and records[0][1].insert == (ROW,)

    def test_degraded_log_still_replays(self, tmp_path):
        # Read paths must survive a write-degraded log: that is the
        # "read-only degraded mode" half of the contract.
        log = DeltaLog(tmp_path / "t.jsonl")
        log.append(delta(insert=[ROW]))
        with faults.plan({"wal.append.fsync": {"once": True}}):
            with pytest.raises(DegradedError):
                log.append(delta(delete=[0]))
        # The acked record replays; the fsync-failed one may too (its
        # complete line is on disk) — what matters is nothing acked is
        # lost and reads keep working while appends refuse.
        replayed = [seq for seq, _d in log.replay()]
        assert replayed[0] == 1 and replayed == list(range(1, len(replayed) + 1))
        assert log.stats()["degraded"] is not None

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_appends=st.integers(1, 25),
        probability=st.floats(0.1, 0.6),
        point=st.sampled_from(APPEND_POINTS),
    )
    def test_acknowledged_appends_always_replay(
        self, tmp_path_factory, seed, n_appends, probability, point
    ):
        """Any seeded fault schedule: every acked append replays cleanly."""
        path = tmp_path_factory.mktemp("wal") / "t.jsonl"
        log = DeltaLog(path)
        acked: list[int] = []  # payload markers of acknowledged appends
        with faults.plan({point: {"probability": probability}}, seed=seed):
            for i in range(n_appends):
                attempt = delta(insert=[{"a": i, "b": seed % 7}])
                try:
                    log.append(attempt)
                    acked.append(i)
                except DegradedError:
                    log.reopen()  # heal; retry policy is the caller's
        log.close()

        recovered = DeltaLog(path)
        replayed = recovered.replay()
        markers = [d.insert[0]["a"] for _seq, d in replayed]
        # No acked record is ever lost...
        assert set(acked) <= set(markers)
        # ...the history is in submission order with no duplicates
        # (fsync-failed appends may legitimately replay: their complete
        # line reached the file before the failure)...
        assert markers == sorted(set(markers))
        # ...and sequence numbers are contiguous from 1.
        assert [seq for seq, _d in replayed] == list(range(1, len(markers) + 1))
        assert recovered.last_seq == len(markers)


class TestCompactionFaults:
    @pytest.mark.parametrize(
        "point", ["wal.compact.fsync", "wal.compact.replace"]
    )
    def test_failed_compaction_is_loud_but_harmless(self, tmp_path, point):
        path = tmp_path / "t.jsonl"
        log = DeltaLog(path)
        for i in range(4):
            log.append(delta(insert=[{"a": i, "b": 0}]))

        with faults.plan({point: {"once": True}}):
            with pytest.raises(StoreError, match="remains authoritative"):
                log.truncate_through(2)
        # The uncompacted log is untouched: every record still replays.
        assert [seq for seq, _d in log.replay()] == [1, 2, 3, 4]
        # And appends still work — compaction failure is not degradation.
        assert log.append(delta(delete=[0])) == 5

        # Without the fault the same compaction succeeds.
        assert log.truncate_through(2) == 3
        assert [seq for seq, _d in log.replay()] == [3, 4, 5]
        log.close()


class TestArtifactStoreFaults:
    @pytest.mark.parametrize(
        "point",
        ["store.atomic_write", "store.atomic_write.torn", "store.atomic_write.fsync"],
    )
    def test_failed_put_never_exposes_an_object(self, tmp_path, point):
        store = ArtifactStore(tmp_path)
        payload = b"x" * 256
        with faults.plan({point: {"once": True}}):
            with pytest.raises(StoreError, match="cannot store object"):
                store.put_bytes(payload)
        # The object address must be absent, not half-written: a torn
        # temp file is fine, a torn *object* would poison every reader.
        import hashlib

        digest = hashlib.sha256(payload).hexdigest()
        assert not store.has(digest)
        with pytest.raises(StoreError, match="no object"):
            store.get_bytes(digest)
        # The store heals with no intervention: the retry lands.
        assert store.put_bytes(payload) == digest
        assert store.get_bytes(digest) == payload

    def test_corrupt_object_refused_on_read(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = store.put_bytes(b"precious state")
        path = store._object_path(digest)
        data = bytearray(path.read_bytes())
        data[0] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptArtifactError, match="refusing to load"):
            store.get_bytes(digest)

    def test_existing_object_survives_failed_rewrite(self, tmp_path):
        # put_bytes is idempotent and skips existing objects, so inject
        # into a manifest write instead: the previous manifest content
        # must survive a failed atomic_write of its successor.
        store = ArtifactStore(tmp_path)
        store.write_manifest("acme", {"wal_seq": 1})
        with faults.plan({"store.atomic_write.torn": {"once": True}}):
            with pytest.raises(StoreError, match="cannot write manifest"):
                store.write_manifest("acme", {"wal_seq": 2})
        # The failed successor never became visible: the latest manifest
        # is still the old, complete one.
        assert store.manifest("acme")["wal_seq"] == 1
        assert store.snapshots("acme") == ["00000001"]
        store.write_manifest("acme", {"wal_seq": 2})
        assert store.manifest("acme")["wal_seq"] == 2
