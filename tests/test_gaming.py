"""Tests for the recourse gaming audit (Section 6 future work)."""

import numpy as np
import pytest

from repro.causal.equations import logistic_binary, root_categorical
from repro.causal.scm import StructuralCausalModel, StructuralEquation
from repro.core.gaming import GamingReport, audit_recourse_gaming
from repro.core.recourse import Recourse, RecourseAction


@pytest.fixture(scope="module")
def proxy_scm():
    """merit -> label; proxy -> nothing (pure classifier bait).

    The true label depends only on merit; 'proxy' is an independent
    feature a (bad) classifier might rely on.
    """
    eqs = [
        StructuralEquation("merit", (), (0, 1, 2), root_categorical([0.4, 0.4, 0.2])),
        StructuralEquation("proxy", (), (0, 1, 2), root_categorical([0.5, 0.3, 0.2])),
        StructuralEquation(
            "label", ("merit",), (0, 1), logistic_binary({"merit": 2.0}, bias=-2.0)
        ),
    ]
    return StructuralCausalModel(eqs)


def _recourse(attribute, current, new):
    return Recourse(
        actions=[RecourseAction(attribute, current, new, 1.0)],
        total_cost=1.0,
        estimated_sufficiency=0.9,
        estimated_probability=0.9,
        threshold=0.9,
        n_constraints=2,
        n_variables=2,
    )


class TestGamingAudit:
    def test_merit_recourse_is_not_gaming(self, proxy_scm):
        """Raising merit helps both the classifier and the true label."""
        report = audit_recourse_gaming(
            _recourse("merit", 0, 2),
            proxy_scm,
            predict_positive=lambda t: t.codes("merit") >= 1,
            label="label",
            seed=0,
        )
        assert report.classifier_gain > 0.2
        assert report.true_label_gain > 0.1
        assert not report.is_gaming()

    def test_proxy_recourse_is_gaming(self, proxy_scm):
        """A classifier keyed on the proxy is gamed by moving the proxy."""
        report = audit_recourse_gaming(
            _recourse("proxy", 0, 2),
            proxy_scm,
            predict_positive=lambda t: t.codes("proxy") >= 1,
            label="label",
            seed=0,
        )
        assert report.classifier_gain > 0.2
        assert abs(report.true_label_gain) < 0.05
        assert report.is_gaming()
        assert report.gaming_index > 0.2

    def test_empty_recourse_gains_nothing(self, proxy_scm):
        empty = Recourse(
            actions=[], total_cost=0.0, estimated_sufficiency=1.0,
            estimated_probability=0.9, threshold=0.9, n_constraints=0, n_variables=0,
        )
        report = audit_recourse_gaming(
            empty,
            proxy_scm,
            predict_positive=lambda t: t.codes("merit") >= 1,
            label="label",
            seed=0,
        )
        assert report.classifier_gain == pytest.approx(0.0)
        assert report.true_label_gain == pytest.approx(0.0)

    def test_report_dataclass(self):
        report = GamingReport(classifier_gain=0.5, true_label_gain=0.1)
        assert report.gaming_index == pytest.approx(0.4)
        assert report.is_gaming(tolerance=0.3)
        assert not report.is_gaming(tolerance=0.5)

    def test_end_to_end_with_real_recourse(self):
        """Audit a solver-produced recourse on the wide SCM: by
        construction every feature truly causes the outcome, so a valid
        recourse is never gaming."""
        from repro import load_dataset
        from repro.core.recourse import RecourseSolver
        from repro.core.scores import ScoreEstimator
        from repro.utils.exceptions import RecourseInfeasibleError

        bundle = load_dataset("wide", n_variables=6, n_rows=5_000, seed=0)
        table = bundle.table.select(bundle.feature_names)
        positive = bundle.table.codes("outcome").astype(bool)
        estimator = ScoreEstimator(table, positive, diagram=bundle.graph)
        solver = RecourseSolver(estimator, bundle.feature_names)
        negatives = np.nonzero(~positive)[0]
        for idx in negatives[:10]:
            try:
                recourse = solver.solve(table.row_codes(int(idx)), alpha=0.6)
            except RecourseInfeasibleError:
                continue
            if recourse.is_empty:
                continue
            report = audit_recourse_gaming(
                recourse,
                bundle.scm,
                predict_positive=lambda t: np.ones(len(t), bool),  # placeholder
                label="outcome",
                feature_names=bundle.feature_names,
                seed=0,
            )
            # The true label gain is positive: the intervention raises
            # the real outcome mechanism, not just a classifier.
            assert report.true_label_gain > 0.0
            break
        else:
            pytest.skip("no solvable recourse found")
