"""Unit tests for the IP container and branch-and-bound solver."""

import itertools

import numpy as np
import pytest

from repro.opt.branch_and_bound import BranchAndBoundSolver, solve_binary_program
from repro.opt.integer_program import IntegerProgram
from repro.utils.exceptions import RecourseInfeasibleError


def brute_force(program: IntegerProgram):
    """Exhaustive reference solver for small programs."""
    c, A_ub, b_ub, A_eq, b_eq = program.matrices()
    n = program.n_variables
    best, best_x = np.inf, None
    for bits in itertools.product([0, 1], repeat=n):
        x = np.array(bits, dtype=float)
        if A_ub is not None and (A_ub @ x > b_ub + 1e-9).any():
            continue
        if A_eq is not None and not np.allclose(A_eq @ x, b_eq, atol=1e-9):
            continue
        value = float(c @ x)
        if value < best - 1e-12:
            best, best_x = value, x
    return best, best_x


class TestIntegerProgram:
    def test_variable_bookkeeping(self):
        p = IntegerProgram()
        p.add_variable("a", cost=2.0)
        p.add_variable("b", cost=-1.0)
        assert p.n_variables == 2
        assert p.variable_names == ["a", "b"]

    def test_duplicate_variable_rejected(self):
        p = IntegerProgram()
        p.add_variable("a")
        with pytest.raises(ValueError):
            p.add_variable("a")

    def test_constraint_with_unknown_variable_rejected(self):
        p = IntegerProgram()
        p.add_variable("a")
        with pytest.raises(KeyError):
            p.add_le_constraint({"zzz": 1.0}, 1.0)

    def test_matrices_shapes(self):
        p = IntegerProgram()
        p.add_variable("a", 1.0)
        p.add_variable("b", 2.0)
        p.add_le_constraint({"a": 1.0, "b": 1.0}, 1.0)
        p.add_eq_constraint({"a": 1.0}, 1.0)
        c, A_ub, b_ub, A_eq, b_eq = p.matrices()
        assert c.tolist() == [1.0, 2.0]
        assert A_ub.shape == (1, 2)
        assert A_eq.shape == (1, 2)
        assert p.n_constraints == 2

    def test_ge_constraint_stored_negated(self):
        p = IntegerProgram()
        p.add_variable("a", 1.0)
        p.add_ge_constraint({"a": 1.0}, 1.0)
        _, A_ub, b_ub, _, _ = p.matrices()
        assert A_ub[0, 0] == -1.0
        assert b_ub[0] == -1.0

    def test_assignment_from_vector(self):
        p = IntegerProgram()
        p.add_variable("a")
        p.add_variable("b")
        assert p.assignment_from_vector(np.array([0.9999, 0.0001])) == {"a": 1, "b": 0}


class TestBranchAndBound:
    def test_unconstrained_minimum_picks_negative_costs(self):
        p = IntegerProgram()
        p.add_variable("a", cost=-2.0)
        p.add_variable("b", cost=3.0)
        sol = solve_binary_program(p)
        assert sol.values == {"a": 1, "b": 0}
        assert sol.objective == pytest.approx(-2.0)

    def test_knapsack_style(self):
        # maximise value (minimise -value) with weight limit.
        p = IntegerProgram()
        values = {"a": 6.0, "b": 10.0, "c": 12.0}
        weights = {"a": 1.0, "b": 2.0, "c": 3.0}
        for name, v in values.items():
            p.add_variable(name, cost=-v)
        p.add_le_constraint(weights, 5.0)
        sol = solve_binary_program(p)
        assert sol.objective == pytest.approx(-22.0)  # b + c
        assert sol.values == {"a": 0, "b": 1, "c": 1}

    def test_ge_constraint_forces_selection(self):
        p = IntegerProgram()
        p.add_variable("a", cost=5.0)
        p.add_ge_constraint({"a": 1.0}, 1.0)
        sol = solve_binary_program(p)
        assert sol.values["a"] == 1

    def test_eq_constraint(self):
        p = IntegerProgram()
        for name in "abc":
            p.add_variable(name, cost=1.0)
        p.add_eq_constraint({"a": 1.0, "b": 1.0, "c": 1.0}, 2.0)
        sol = solve_binary_program(p)
        assert sum(sol.values.values()) == 2

    def test_infeasible_raises(self):
        p = IntegerProgram()
        p.add_variable("a", cost=1.0)
        p.add_ge_constraint({"a": 1.0}, 2.0)  # impossible for a binary
        with pytest.raises(RecourseInfeasibleError):
            solve_binary_program(p)

    def test_empty_program(self):
        sol = solve_binary_program(IntegerProgram())
        assert sol.values == {}
        assert sol.objective == 0.0

    def test_chosen_helper(self):
        p = IntegerProgram()
        p.add_variable("a", cost=-1.0)
        p.add_variable("b", cost=1.0)
        sol = solve_binary_program(p)
        assert sol.chosen() == ["a"]

    def test_node_limit_enforced(self):
        rng = np.random.default_rng(0)
        p = IntegerProgram()
        for i in range(12):
            p.add_variable(i, cost=float(rng.normal()))
        p.add_le_constraint({i: float(rng.uniform(0.5, 1.5)) for i in range(12)}, 3.0)
        with pytest.raises(RecourseInfeasibleError, match="node limit"):
            BranchAndBoundSolver(max_nodes=1).solve(p)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_brute_force_on_random_programs(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        p = IntegerProgram()
        for i in range(n):
            p.add_variable(i, cost=float(rng.normal()))
        for _ in range(3):
            coeffs = {i: float(rng.normal()) for i in range(n)}
            rhs = float(rng.uniform(-1, 2))
            p.add_le_constraint(coeffs, rhs)
        reference, _ = brute_force(p)
        if np.isinf(reference):
            with pytest.raises(RecourseInfeasibleError):
                solve_binary_program(p)
        else:
            sol = solve_binary_program(p)
            assert sol.objective == pytest.approx(reference, abs=1e-6)

    def test_exclusivity_rows_like_recourse(self):
        # Two attributes with 3 candidate values each, pick cheapest combo
        # meeting a gain threshold — the exact recourse IP shape.
        p = IntegerProgram()
        gains = {}
        for attr in ("A", "B"):
            excl = {}
            for v, (cost, gain) in enumerate([(1.0, 0.4), (2.0, 0.9), (3.0, 1.5)]):
                p.add_variable((attr, v), cost=cost)
                gains[(attr, v)] = gain
                excl[(attr, v)] = 1.0
            p.add_le_constraint(excl, 1.0)
        p.add_ge_constraint(gains, 1.6)
        sol = solve_binary_program(p)
        chosen = sol.chosen()
        assert sum(gains[c] for c in chosen) >= 1.6
        # Optimal: B at gain 1.5 (cost 3) + A at 0.4 (cost 1)? that's 1.9/4.0;
        # alternative A 0.9 + B 0.9 invalid (same attr), so check optimum:
        reference, _ = brute_force(p)
        assert sol.objective == pytest.approx(reference)
