"""Unit tests for LIME, Kernel SHAP, permutation importance, rankings."""

import numpy as np
import pytest

from repro.data.table import Column, Table
from repro.xai.feat import permutation_importance
from repro.xai.lime import LimeExplainer
from repro.xai.ranking import kendall_tau, normalise_scores, rank_of, ranking_from_scores
from repro.xai.shap import KernelShapExplainer


@pytest.fixture(scope="module")
def xai_setup():
    """Three features; the rule uses only 'a' and 'b' (a twice as strong)."""
    rng = np.random.default_rng(5)
    n = 3_000
    a = rng.integers(0, 3, size=n)
    b = rng.integers(0, 3, size=n)
    noise = rng.integers(0, 3, size=n)
    table = Table(
        [
            Column.from_codes("a", a, (0, 1, 2)),
            Column.from_codes("b", b, (0, 1, 2)),
            Column.from_codes("noise", noise, (0, 1, 2)),
        ]
    )

    def predict(t):
        return (2 * t.codes("a") + t.codes("b")) >= 4

    return table, predict


class TestLime:
    def test_relevant_features_outrank_noise(self, xai_setup):
        table, predict = xai_setup
        lime = LimeExplainer(predict, table, n_samples=800, seed=0)
        exp = lime.explain({"a": 2, "b": 2, "noise": 0})
        ranking = exp.ranking()
        assert ranking.index("a") < ranking.index("noise")
        assert ranking.index("b") < ranking.index("noise")

    def test_weight_signs_reflect_support(self, xai_setup):
        table, predict = xai_setup
        lime = LimeExplainer(predict, table, n_samples=800, seed=0)
        # For a positive instance at a=2, keeping a at its value should
        # support the positive prediction: positive weight.
        exp = lime.explain({"a": 2, "b": 2, "noise": 1})
        assert exp.weights["a"] > 0

    def test_deterministic_given_seed(self, xai_setup):
        table, predict = xai_setup
        a = LimeExplainer(predict, table, n_samples=300, seed=9).explain(
            {"a": 1, "b": 1, "noise": 0}
        )
        b = LimeExplainer(predict, table, n_samples=300, seed=9).explain(
            {"a": 1, "b": 1, "noise": 0}
        )
        assert a.weights == b.weights

    def test_local_prediction_close_to_black_box(self, xai_setup):
        table, predict = xai_setup
        lime = LimeExplainer(predict, table, n_samples=1_500, seed=1)
        exp = lime.explain({"a": 2, "b": 2, "noise": 0})
        assert exp.local_prediction == pytest.approx(1.0, abs=0.35)


class TestKernelShap:
    def test_efficiency_property(self, xai_setup):
        table, predict = xai_setup
        shap = KernelShapExplainer(predict, table, n_background=40, seed=0)
        exp = shap.explain({"a": 2, "b": 2, "noise": 0})
        assert sum(exp.values.values()) == pytest.approx(
            exp.prediction - exp.base_value, abs=1e-8
        )

    def test_irrelevant_feature_near_zero(self, xai_setup):
        table, predict = xai_setup
        shap = KernelShapExplainer(predict, table, n_background=60, seed=0)
        exp = shap.explain({"a": 2, "b": 2, "noise": 0})
        assert abs(exp.values["noise"]) < 0.05
        assert abs(exp.values["a"]) > abs(exp.values["noise"])

    def test_symmetry_of_identical_features(self):
        rng = np.random.default_rng(3)
        n = 2_000
        a = rng.integers(0, 2, size=n)
        b = rng.integers(0, 2, size=n)
        table = Table(
            [Column.from_codes("a", a, (0, 1)), Column.from_codes("b", b, (0, 1))]
        )

        def predict(t):
            return (t.codes("a") + t.codes("b")) >= 1

        shap = KernelShapExplainer(predict, table, n_background=80, seed=0)
        exp = shap.explain({"a": 1, "b": 1})
        assert exp.values["a"] == pytest.approx(exp.values["b"], abs=0.03)

    def test_single_attribute_gets_full_gap(self, xai_setup):
        table, predict = xai_setup
        shap = KernelShapExplainer(
            predict, table, attributes=["a"], n_background=40, seed=0
        )
        exp = shap.explain({"a": 2, "b": 0, "noise": 0})
        assert list(exp.values) == ["a"]
        assert exp.values["a"] == pytest.approx(exp.prediction - exp.base_value)

    def test_sampled_regime_still_efficient(self, xai_setup):
        table, predict = xai_setup
        shap = KernelShapExplainer(
            predict,
            table,
            n_background=20,
            max_exact_attributes=1,  # force sampling
            n_coalitions=256,
            seed=0,
        )
        exp = shap.explain({"a": 2, "b": 2, "noise": 0})
        assert sum(exp.values.values()) == pytest.approx(
            exp.prediction - exp.base_value, abs=1e-8
        )

    def test_global_importance_ranks_relevant_first(self, xai_setup):
        table, predict = xai_setup
        shap = KernelShapExplainer(predict, table, n_background=25, seed=0)
        imp = shap.global_importance(table, n_instances=15)
        assert imp["a"] > imp["noise"]


class TestPermutationImportance:
    def test_relevant_feature_dominates(self, xai_setup):
        table, predict = xai_setup
        reference = predict(table)
        imp = permutation_importance(predict, table, reference, n_repeats=3, seed=0)
        assert imp["a"] > imp["noise"]
        assert imp["b"] > imp["noise"]

    def test_noise_feature_near_zero(self, xai_setup):
        table, predict = xai_setup
        reference = predict(table)
        imp = permutation_importance(predict, table, reference, n_repeats=3, seed=0)
        assert imp["noise"] < 0.02

    def test_importances_non_negative(self, xai_setup):
        table, predict = xai_setup
        imp = permutation_importance(predict, table, predict(table), seed=1)
        assert all(v >= 0 for v in imp.values())


class TestRankingHelpers:
    def test_normalise_scores(self):
        out = normalise_scores({"a": 2.0, "b": -4.0})
        assert out == {"a": 0.5, "b": -1.0}

    def test_normalise_all_zero(self):
        assert normalise_scores({"a": 0.0}) == {"a": 0.0}

    def test_ranking_from_scores_uses_magnitude(self):
        assert ranking_from_scores({"a": -0.9, "b": 0.5}) == ["a", "b"]

    def test_rank_of(self):
        assert rank_of({"a": 0.9, "b": 0.5}, "b") == 2

    def test_kendall_tau_identical(self):
        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0

    def test_kendall_tau_reversed(self):
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0

    def test_kendall_tau_partial_overlap(self):
        assert kendall_tau(["a", "b", "x"], ["b", "a", "y"]) == -1.0

    def test_kendall_tau_degenerate(self):
        assert kendall_tau(["a"], ["a"]) == 1.0
