"""HTTP front-end smoke tests: one request per endpoint, schema checks."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.service import ExplainerSession
from repro.service.server import create_server


def tiny_model(features: Table) -> np.ndarray:
    return (features.codes("a") + features.codes("b")) >= 2


@pytest.fixture(scope="module")
def server():
    rng = np.random.default_rng(7)
    n = 200
    table = Table.from_dict(
        {
            "a": rng.integers(0, 3, n).tolist(),
            "b": rng.integers(0, 3, n).tolist(),
            "sex": rng.choice(["F", "M"], n).tolist(),
        },
        domains={"a": [0, 1, 2], "b": [0, 1, 2], "sex": ["F", "M"]},
    )
    lewis = Lewis(
        tiny_model,
        data=table,
        feature_names=["a", "b"],
        attributes=["a", "b", "sex"],
        infer_orderings=False,
    )
    session = ExplainerSession(
        lewis, default_actionable=["a", "b"], background=True
    )
    httpd = create_server(session, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()
    session.close()


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def get(url: str):
    with urllib.request.urlopen(url, timeout=10) as response:
        return response.status, json.loads(response.read())


def post(url: str, payload: dict):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


def post_error(url: str, payload) -> tuple[int, dict]:
    try:
        post(url, payload)
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())
    raise AssertionError("expected an HTTP error")


class TestEndpoints:
    def test_health(self, base_url):
        status, body = get(f"{base_url}/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert set(body) >= {"fingerprint", "table_version", "n_rows"}

    def test_explain_global(self, base_url):
        status, body = post(f"{base_url}/v1/explain/global", {})
        assert status == 200
        result = body["result"]
        assert set(result) >= {"context", "attributes", "ranking", "statements"}
        assert {"a", "b", "sex"} == set(result["ranking"])
        for row in result["attributes"]:
            assert set(row) >= {"attribute", "necessity", "sufficiency"}

    def test_explain_global_cache_hit_on_repeat(self, base_url):
        post(f"{base_url}/v1/explain/global", {"max_pairs_per_attribute": 3})
        status, body = post(
            f"{base_url}/v1/explain/global", {"max_pairs_per_attribute": 3}
        )
        assert status == 200 and body["cached"] is True

    def test_explain_context(self, base_url):
        status, body = post(
            f"{base_url}/v1/explain/context", {"context": {"sex": "M"}}
        )
        assert status == 200
        assert body["result"]["context"] == {"sex": "M"}

    def test_explain_local(self, base_url):
        status, body = post(f"{base_url}/v1/explain/local", {"index": 0})
        assert status == 200
        result = body["result"]
        assert set(result) >= {"individual", "outcome_positive", "contributions"}
        assert all(
            set(c) >= {"attribute", "value", "positive", "negative", "net"}
            for c in result["contributions"]
        )

    def test_recourse(self, base_url, server):
        session = server.session
        index = int(session.lewis.negative_indices()[0])
        status, body = post(
            f"{base_url}/v1/recourse", {"index": index, "alpha": 0.5}
        )
        assert status == 200
        assert set(body["result"]) >= {"actions", "total_cost", "statements"}

    def test_audit(self, base_url):
        status, body = post(f"{base_url}/v1/audit", {"protected": ["sex"]})
        assert status == 200
        verdicts = body["result"]["verdicts"]
        assert verdicts[0]["attribute"] == "sex"
        assert isinstance(verdicts[0]["is_counterfactually_fair"], bool)

    def test_scores(self, base_url):
        status, body = post(
            f"{base_url}/v1/scores",
            {"contrasts": [[{"a": 2}, {"a": 0}]], "context": {}},
        )
        assert status == 200
        triple = body["result"]["scores"][0]
        assert set(triple) == {"necessity", "sufficiency", "necessity_sufficiency"}

    def test_update_then_version_moves(self, base_url, server):
        session = server.session
        before = session.table_version
        rows = [session.lewis.data.row(i) for i in range(2)]
        status, body = post(
            f"{base_url}/v1/update", {"insert": rows, "delete": [0]}
        )
        assert status == 200
        assert body["result"]["version"] == before + 1
        assert body["table_version"] == before + 1

    def test_stats(self, base_url):
        status, body = get(f"{base_url}/v1/stats")
        assert status == 200
        assert set(body) >= {"cache", "engine", "scheduler", "fingerprint"}


class TestErrorMapping:
    def test_unknown_endpoint_404(self, base_url):
        code, body = post_error(f"{base_url}/v1/nope", {})
        assert code == 404 and "error" in body

    def test_unknown_attribute_400(self, base_url):
        code, body = post_error(
            f"{base_url}/v1/explain/context", {"context": {"nope": 1}}
        )
        assert code == 400 and "error" in body

    def test_unknown_label_400(self, base_url):
        code, body = post_error(
            f"{base_url}/v1/update", {"insert": [{"a": 0, "b": 0, "sex": "X"}]}
        )
        assert code == 400 and "not in domain" in body["error"]

    def test_missing_context_400(self, base_url):
        code, _body = post_error(f"{base_url}/v1/explain/context", {})
        assert code == 400

    def test_local_selector_validation_400(self, base_url):
        code, _body = post_error(
            f"{base_url}/v1/explain/local", {"index": 1, "individual": {"a": 0}}
        )
        assert code == 400

    def test_malformed_json_400(self, base_url):
        request = urllib.request.Request(
            f"{base_url}/v1/explain/global", data=b"{not json"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400

    def test_bad_index_type_400(self, base_url):
        code, body = post_error(
            f"{base_url}/v1/explain/local", {"index": "seven"}
        )
        assert code == 400 and "integer" in body["error"]

    def test_create_server_starts_dispatch_lane(self):
        """A sync-mode session must be promoted before threads hit it."""
        rng = np.random.default_rng(1)
        table = Table.from_dict(
            {"a": rng.integers(0, 3, 60).tolist(), "b": rng.integers(0, 3, 60).tolist()},
            domains={"a": [0, 1, 2], "b": [0, 1, 2]},
        )
        lewis = Lewis(
            tiny_model, data=table, feature_names=["a", "b"], infer_orderings=False
        )
        session = ExplainerSession(lewis)  # background defaults to False
        assert session.stats()["scheduler"]["background"] is False
        httpd = create_server(session, port=0)
        try:
            assert session.stats()["scheduler"]["background"] is True
        finally:
            httpd.server_close()
            session.close()

    def test_concurrent_requests_all_answer(self, base_url):
        results = [None] * 6

        def worker(i):
            results[i] = post(
                f"{base_url}/v1/scores",
                {"contrasts": [[{"a": 2}, {"a": i % 2}]]},
            )[0]

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert results == [200] * 6
