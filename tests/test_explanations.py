"""Unit tests for explanation objects and builders."""

import numpy as np
import pytest

from repro.core.explanations import (
    AttributeScore,
    GlobalExplanation,
    LocalContribution,
    LocalExplanation,
    build_global_explanation,
    build_local_explanation,
)
from repro.core.scores import ScoreEstimator


@pytest.fixture(scope="module")
def builder_setup(toy_scm):
    table = toy_scm.sample(15_000, seed=41).select(["Z", "X"])
    positive = (table.codes("X") + table.codes("Z")) >= 2
    est = ScoreEstimator(table, positive, diagram=toy_scm.diagram.subgraph(["Z", "X"]))
    return table, positive, est


class TestAttributeScore:
    def test_score_lookup(self):
        s = AttributeScore("a", necessity=0.1, sufficiency=0.2, necessity_sufficiency=0.3)
        assert s.score("necessity") == 0.1
        assert s.score("sufficiency") == 0.2
        assert s.score("necessity_sufficiency") == 0.3

    def test_unknown_kind(self):
        s = AttributeScore("a", 0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            s.score("magic")


class TestGlobalExplanation:
    def _explanation(self):
        return GlobalExplanation(
            context={},
            attribute_scores=[
                AttributeScore("a", 0.9, 0.1, 0.5),
                AttributeScore("b", 0.2, 0.8, 0.7),
            ],
        )

    def test_ranking_by_kind(self):
        exp = self._explanation()
        assert exp.ranking("necessity") == ["a", "b"]
        assert exp.ranking("sufficiency") == ["b", "a"]
        assert exp.ranking("necessity_sufficiency") == ["b", "a"]

    def test_rank_of(self):
        exp = self._explanation()
        assert exp.rank_of("a", "necessity") == 1
        assert exp.rank_of("a", "sufficiency") == 2

    def test_score_of_unknown(self):
        with pytest.raises(KeyError):
            self._explanation().score_of("zzz")

    def test_as_rows(self):
        rows = self._explanation().as_rows()
        assert rows[0]["attribute"] == "a"
        assert rows[1]["sufficiency"] == 0.8


class TestBuildGlobalExplanation:
    def test_scores_every_attribute(self, builder_setup):
        _t, _p, est = builder_setup
        exp = build_global_explanation(est, ["Z", "X"])
        assert {s.attribute for s in exp.attribute_scores} == {"Z", "X"}

    def test_context_attribute_skipped(self, builder_setup):
        _t, _p, est = builder_setup
        exp = build_global_explanation(est, ["Z", "X"], context={"Z": 1})
        assert {s.attribute for s in exp.attribute_scores} == {"X"}

    def test_best_pairs_recorded_with_labels(self, builder_setup):
        _t, _p, est = builder_setup
        exp = build_global_explanation(est, ["X"])
        s = exp.score_of("X")
        assert s.best_pair_sufficiency is not None
        hi, lo = s.best_pair_sufficiency
        assert hi in (0, 1, 2) and lo in (0, 1, 2)

    def test_max_pairs_cap_prefers_extremes(self, builder_setup):
        _t, _p, est = builder_setup
        capped = build_global_explanation(est, ["X"], max_pairs_per_attribute=1)
        full = build_global_explanation(est, ["X"])
        # The extreme pair carries the max here, so capping is lossless.
        assert capped.score_of("X").necessity_sufficiency == pytest.approx(
            full.score_of("X").necessity_sufficiency
        )

    def test_context_labels_recorded(self, builder_setup):
        _t, _p, est = builder_setup
        exp = build_global_explanation(est, ["X"], context={"Z": 1})
        assert exp.context == {"Z": 1}

    def test_statements_render(self, builder_setup):
        _t, _p, est = builder_setup
        statements = build_global_explanation(est, ["X", "Z"]).statements(top=2)
        assert statements
        assert all("instead of" in s for s in statements)


class TestLocalExplanation:
    def test_contribution_net(self):
        c = LocalContribution("a", "v", positive=0.7, negative=0.2)
        assert c.net == pytest.approx(0.5)

    def test_ranking_modes(self):
        exp = LocalExplanation(
            individual={},
            outcome_positive=False,
            contributions=[
                LocalContribution("a", "v", positive=0.9, negative=0.1),
                LocalContribution("b", "w", positive=0.2, negative=0.8),
            ],
        )
        assert exp.ranking("negative") == ["b", "a"]
        assert exp.ranking("positive") == ["a", "b"]
        assert exp.ranking("net")[0] == "a"

    def test_contribution_of_unknown(self):
        exp = LocalExplanation({}, False, [])
        with pytest.raises(KeyError):
            exp.contribution_of("zzz")


class TestBuildLocalExplanation:
    def test_negative_individual_negative_contribution(self, builder_setup):
        _t, _p, est = builder_setup
        # Z=1, X=0: negative outcome; raising X flips it.
        exp = build_local_explanation(
            est, {"Z": 1, "X": 0}, outcome_positive=False, attributes=["Z", "X"]
        )
        x = exp.contribution_of("X")
        assert x.negative > 0.9
        assert x.negative_foil in (1, 2)
        assert x.positive == 0.0  # X is at its lowest value

    def test_positive_individual_positive_contribution(self, builder_setup):
        _t, _p, est = builder_setup
        # Z=1, X=2: positive outcome; dropping X to 0 flips it.
        exp = build_local_explanation(
            est, {"Z": 1, "X": 2}, outcome_positive=True, attributes=["X"]
        )
        x = exp.contribution_of("X")
        assert x.positive > 0.9
        assert x.positive_foil == 0

    def test_statements_direction_negative(self, builder_setup):
        _t, _p, est = builder_setup
        exp = build_local_explanation(
            est, {"Z": 1, "X": 0}, outcome_positive=False, attributes=["X"]
        )
        sentences = exp.statements(top=1)
        assert sentences and "approved" in sentences[0]

    def test_statements_direction_positive(self, builder_setup):
        _t, _p, est = builder_setup
        exp = build_local_explanation(
            est, {"Z": 1, "X": 2}, outcome_positive=True, attributes=["X"]
        )
        sentences = exp.statements(top=1)
        assert sentences and "rejected" in sentences[0]

    def test_individual_decoded(self, builder_setup):
        _t, _p, est = builder_setup
        exp = build_local_explanation(
            est, {"Z": 1, "X": 2}, outcome_positive=True, attributes=["X"]
        )
        assert exp.individual == {"Z": 1, "X": 2}
