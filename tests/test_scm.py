"""Unit tests for structural causal models and equation helpers."""

import numpy as np
import pytest

from repro.causal.equations import (
    conditional_table,
    deterministic,
    linear_threshold,
    logistic_binary,
    mixture,
    root_categorical,
)
from repro.causal.scm import StructuralCausalModel, StructuralEquation
from repro.utils.exceptions import GraphError


class TestEquationHelpers:
    def test_root_categorical_matches_probabilities(self):
        f = root_categorical([0.2, 0.5, 0.3])
        u = np.random.default_rng(0).random(50_000)
        codes = f({}, u)
        freqs = np.bincount(codes, minlength=3) / len(codes)
        assert np.allclose(freqs, [0.2, 0.5, 0.3], atol=0.01)

    def test_root_categorical_rejects_bad_probs(self):
        with pytest.raises(ValueError):
            root_categorical([0.5, 0.6])
        with pytest.raises(ValueError):
            root_categorical([])

    def test_root_categorical_deterministic_in_u(self):
        f = root_categorical([0.5, 0.5])
        u = np.array([0.1, 0.9])
        assert np.array_equal(f({}, u), f({}, u))

    def test_linear_threshold_monotone_in_parent(self):
        f = linear_threshold({"p": 1.0}, cuts=[0.5, 1.5], noise_scale=0.0)
        u = np.full(3, 0.5)
        parents = {"p": np.array([0, 1, 2])}
        codes = f(parents, u)
        assert (np.diff(codes) >= 0).all()

    def test_linear_threshold_noise_free_is_deterministic(self):
        f = linear_threshold({"p": 1.0}, cuts=[0.5], noise_scale=0.0)
        out = f({"p": np.array([0, 1])}, np.array([0.01, 0.99]))
        assert out.tolist() == [0, 1]

    def test_logistic_binary_probability(self):
        f = logistic_binary({}, bias=0.0)  # p = 0.5 everywhere
        u = np.random.default_rng(1).random(20_000)
        assert abs(f({}, u).mean() - 0.5) < 0.01

    def test_logistic_binary_monotone_in_weighted_parent(self):
        f = logistic_binary({"p": 2.0}, bias=-2.0)
        u = np.full(2, 0.4)
        out = f({"p": np.array([0, 3])}, u)
        assert out[1] >= out[0]

    def test_conditional_table_exact_rows(self):
        f = conditional_table(["p"], {(0,): [1.0, 0.0], (1,): [0.0, 1.0]}, 2)
        out = f({"p": np.array([0, 1, 0])}, np.array([0.3, 0.7, 0.9]))
        assert out.tolist() == [0, 1, 0]

    def test_conditional_table_missing_row_raises(self):
        f = conditional_table(["p"], {(0,): [1.0, 0.0]}, 2)
        with pytest.raises(KeyError):
            f({"p": np.array([1])}, np.array([0.5]))

    def test_conditional_table_bad_vector_rejected(self):
        with pytest.raises(ValueError):
            conditional_table(["p"], {(0,): [0.5, 0.2]}, 2)

    def test_deterministic_node(self):
        f = deterministic(["a", "b"], lambda m: (m[:, 0] + m[:, 1]) % 2)
        out = f({"a": np.array([1, 0]), "b": np.array([1, 1])}, np.zeros(2))
        assert out.tolist() == [0, 1]

    def test_mixture_weight_zero_is_primary(self):
        prim = deterministic([], lambda m: np.zeros(len(m), dtype=int))
        alt = deterministic([], lambda m: np.ones(len(m), dtype=int))
        f = mixture(prim, alt, 0.0)
        assert f({}, np.random.default_rng(0).random(100)).sum() == 0

    def test_mixture_weight_one_is_alternative(self):
        prim = deterministic([], lambda m: np.zeros(len(m), dtype=int))
        alt = deterministic([], lambda m: np.ones(len(m), dtype=int))
        f = mixture(prim, alt, 1.0)
        assert f({}, np.random.default_rng(0).random(100)).sum() == 100

    def test_mixture_invalid_weight(self):
        prim = deterministic([], lambda m: np.zeros(len(m), dtype=int))
        with pytest.raises(ValueError):
            mixture(prim, prim, 1.5)


class TestSCM:
    def test_missing_parent_equation_rejected(self):
        eq = StructuralEquation("X", ("Q",), (0, 1), logistic_binary({"Q": 1.0}))
        with pytest.raises(GraphError, match="parents without equations"):
            StructuralCausalModel([eq])

    def test_duplicate_node_rejected(self):
        eq = StructuralEquation("X", (), (0, 1), root_categorical([0.5, 0.5]))
        with pytest.raises(GraphError, match="duplicate"):
            StructuralCausalModel([eq, eq])

    def test_sample_shapes_and_domains(self, toy_scm):
        table = toy_scm.sample(100, seed=0)
        assert len(table) == 100
        assert table.names == ["Z", "X", "Y"]
        assert table.domain("X") == (0, 1, 2)

    def test_sampling_deterministic_in_seed(self, toy_scm):
        a = toy_scm.sample(50, seed=3)
        b = toy_scm.sample(50, seed=3)
        assert a.codes("Y").tolist() == b.codes("Y").tolist()

    def test_intervention_clamps_node(self, toy_scm):
        table = toy_scm.sample(200, seed=0, interventions={"X": 2})
        assert (table.codes("X") == 2).all()

    def test_intervention_out_of_domain_rejected(self, toy_scm):
        with pytest.raises(ValueError):
            toy_scm.sample(10, seed=0, interventions={"X": 99})

    def test_intervention_does_not_change_non_descendants(self, toy_scm):
        exo = toy_scm.draw_exogenous(500, seed=1)
        factual = toy_scm.evaluate(exo)
        counterfactual = toy_scm.evaluate(exo, {"X": 0})
        assert np.array_equal(factual["Z"], counterfactual["Z"])

    def test_consistency_rule(self, toy_scm):
        """Eq. (2): if X(u) = x then intervening X <- x changes nothing."""
        exo = toy_scm.draw_exogenous(2_000, seed=2)
        factual = toy_scm.evaluate(exo)
        for code in (0, 1, 2):
            counterfactual = toy_scm.evaluate(exo, {"X": code})
            same_x = factual["X"] == code
            assert np.array_equal(factual["Y"][same_x], counterfactual["Y"][same_x])

    def test_counterfactual_reuses_exogenous(self, toy_scm):
        exo = toy_scm.draw_exogenous(100, seed=5)
        a = toy_scm.counterfactual(exo, {"X": 1})
        b = toy_scm.counterfactual(exo, {"X": 1})
        assert np.array_equal(a["Y"], b["Y"])

    def test_diagram_matches_equations(self, toy_scm):
        diagram = toy_scm.diagram
        assert ("Z", "X") in diagram.edges
        assert ("X", "Y") in diagram.edges
        assert ("Z", "Y") in diagram.edges

    def test_interventional_shift_is_causal(self, toy_scm):
        """P(Y=1 | do(X=2)) should exceed P(Y=1 | do(X=0))."""
        high = toy_scm.sample(5_000, seed=7, interventions={"X": 2})
        low = toy_scm.sample(5_000, seed=7, interventions={"X": 0})
        assert high.codes("Y").mean() > low.codes("Y").mean() + 0.1

    def test_equation_shape_mismatch_caught(self):
        bad = StructuralEquation(
            "X", (), (0, 1), lambda parents, u: np.zeros(len(u) + 1, dtype=int)
        )
        scm = StructuralCausalModel([bad])
        with pytest.raises(ValueError, match="shape"):
            scm.sample(5, seed=0)

    def test_equation_domain_violation_caught(self):
        bad = StructuralEquation(
            "X", (), (0, 1), lambda parents, u: np.full(len(u), 7, dtype=int)
        )
        scm = StructuralCausalModel([bad])
        with pytest.raises(ValueError, match="domain"):
            scm.sample(5, seed=0)
