"""Streaming monitors: rebuild parity, watch long-poll, journal recovery.

The subsystem's three contracts, each tested against its oracle:

* **Parity** — a monitor's incrementally refreshed summary after any
  sequence of delta batches is *bit-identical* to recomputing the same
  summary on a fresh estimator over the current table
  (:func:`rebuild_summary`).  Hypothesis drives randomized histories;
  the NEC-score case runs 100+ batches per example per the subsystem's
  acceptance bar.
* **Watch** — long-poll cursor semantics: buffered alerts return
  immediately, an up-to-date cursor times out empty, a cursor that fell
  off the ring is flagged ``cursor_truncated``.
* **Journal** — registrations, removals, alerts and detector state
  survive a close/reopen round trip; a torn tail is truncated silently;
  mid-log corruption refuses to replay.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import fit_table_model
from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.monitor import (
    MonitorJournal,
    MonitorSet,
    compute_summary,
    rebuild_summary,
)
from repro.service.session import ExplainerSession
from repro.store import ArtifactStore, checkpoint_session, create_tenant
from repro.utils.exceptions import StoreError

CARDS = {"a": 3, "b": 4, "c": 2}
NAMES = tuple(CARDS)


def make_table(rows: list[tuple[int, ...]]) -> Table:
    return Table.from_dict(
        {name: [row[i] for row in rows] for i, name in enumerate(NAMES)},
        domains={name: list(range(card)) for name, card in CARDS.items()},
    )


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(0)
    n = 400
    rows = {
        "a": rng.integers(0, 3, n).tolist(),
        "b": rng.integers(0, 4, n).tolist(),
        "c": rng.integers(0, 2, n).tolist(),
    }
    rows["y"] = [
        int(a + b + c >= 3) for a, b, c in zip(rows["a"], rows["b"], rows["c"])
    ]
    table = Table.from_dict(
        rows,
        domains={"a": [0, 1, 2], "b": [0, 1, 2, 3], "c": [0, 1], "y": [0, 1]},
    )
    return fit_table_model("logistic", table, list(NAMES), "y", seed=0)


def build_lewis(trained, table: Table) -> Lewis:
    return Lewis(
        trained,
        data=table,
        attributes=list(NAMES),
        positive_outcome=1,
        infer_orderings=False,
    )


def seed_rows(rng: np.random.Generator, n: int) -> list[tuple[int, ...]]:
    return [
        tuple(int(rng.integers(0, CARDS[name])) for name in NAMES)
        for _ in range(n)
    ]


def random_batch(
    rng: np.random.Generator, mirror: list[tuple[int, ...]]
) -> tuple[dict, list[tuple[int, ...]]]:
    """One random insert/delete delta that keeps every category populated.

    Scores condition on attribute values, so a delta that empties a
    category would make the monitored quantity undefined on *both* the
    incremental and the rebuilt side — legal, but not what this parity
    test is probing. Returns the batch and the expected post-state rows.
    """
    n = len(mirror)
    inserts = seed_rows(rng, int(rng.integers(0, 4)))
    n_del = int(rng.integers(0, min(3, max(n - 8, 0)) + 1))
    deletes = sorted(
        int(i) for i in rng.choice(n, size=n_del, replace=False)
    ) if n_del else []
    kept = [row for i, row in enumerate(mirror) if i not in set(deletes)]
    after = kept + inserts
    for axis, name in enumerate(NAMES):
        seen = {row[axis] for row in after}
        for value in range(CARDS[name]):
            if value not in seen:
                cover = tuple(value if i == axis else 0 for i in range(len(NAMES)))
                inserts.append(cover)
                after.append(cover)
    batch = {"insert": [dict(zip(NAMES, row)) for row in inserts], "delete": deletes}
    return batch, after


ALL_KIND_PAYLOADS = [
    {"kind": "score", "params": {"attribute": "a", "value": 2, "baseline": 0}},
    {"kind": "fairness", "params": {"attribute": "b"}},
    {"kind": "monotonicity", "params": {"attribute": "a"}},
    {
        "kind": "recourse",
        "params": {"attribute": "a", "actionable": ["a", "b"], "probe_size": 6},
    },
]


class TestSummaryParity:
    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_nec_score_parity_over_100_batches(self, trained, seed):
        """The acceptance bar: 100+ incremental refreshes, all bit-exact."""
        rng = np.random.default_rng(seed)
        mirror = seed_rows(rng, 30) + [
            tuple(v if i == axis else 0 for i in range(len(NAMES)))
            for axis, name in enumerate(NAMES)
            for v in range(CARDS[name])
        ]
        session = ExplainerSession(build_lewis(trained, make_table(mirror)))
        monitors = MonitorSet(session)
        desc = monitors.add(
            {"kind": "score", "params": {"attribute": "a", "value": 2, "baseline": 0}}
        )
        spec = monitors._monitors[desc["id"]]["spec"]
        batches = 100 + int(rng.integers(0, 20))
        for _ in range(batches):
            batch, mirror = random_batch(rng, mirror)
            session.update(batch)
            monitors.refresh()
            state = monitors._monitors[desc["id"]]
            assert state["summary"] == rebuild_summary(session.lewis, spec)
        assert len(session.lewis.data) == len(mirror)
        state = monitors.get(desc["id"])
        # a no-op batch does not advance the stream position, so count
        # covered positions, not update() calls
        assert state["batches_seen"] == state["cursor"] - state["registered_at"]
        assert state["batches_seen"] >= 1
        assert state["refreshes"] <= batches

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_all_kinds_parity_after_random_batches(self, trained, seed):
        rng = np.random.default_rng(seed)
        mirror = seed_rows(rng, 40) + [
            tuple(v if i == axis else 0 for i in range(len(NAMES)))
            for axis, name in enumerate(NAMES)
            for v in range(CARDS[name])
        ]
        session = ExplainerSession(build_lewis(trained, make_table(mirror)))
        monitors = MonitorSet(session)
        ids = [monitors.add(payload)["id"] for payload in ALL_KIND_PAYLOADS]
        for _ in range(int(rng.integers(3, 8))):
            batch, mirror = random_batch(rng, mirror)
            session.update(batch)
        monitors.refresh()
        for monitor_id in ids:
            state = monitors._monitors[monitor_id]
            assert state["summary"] == rebuild_summary(session.lewis, state["spec"])
            # and the maintained summary is what compute_summary sees now
            assert state["summary"] == compute_summary(session.lewis, state["spec"])

    def test_refresh_is_noop_at_cursor(self, trained):
        session = ExplainerSession(build_lewis(trained, make_table([(0, 0, 0)] * 20)))
        monitors = MonitorSet(session)
        desc = monitors.add({"kind": "monotonicity", "params": {"attribute": "b"}})
        out = monitors.refresh()
        assert out["refreshed"] == 0  # nothing past the registration cursor
        assert monitors.get(desc["id"])["refreshes"] == 0

    def test_bad_specs_rejected(self, trained):
        session = ExplainerSession(build_lewis(trained, make_table([(0, 0, 0)] * 20)))
        monitors = MonitorSet(session)
        with pytest.raises(ValueError):
            monitors.add({"kind": "nope"})
        with pytest.raises(ValueError):
            monitors.add(
                {"kind": "score", "params": {"attribute": "a", "value": 1, "baseline": 1}}
            )
        with pytest.raises(ValueError):
            monitors.add({"kind": "score", "metric": "feasibility_rate",
                          "params": {"attribute": "a", "value": 1, "baseline": 0}})
        with pytest.raises(KeyError):
            monitors.add({"kind": "recourse", "params": {"actionable": ["zz"]}})


def shifted_session(trained, monitors_payload: dict):
    """Session + monitor + a delta that drives ``a`` to its treated value."""
    rng = np.random.default_rng(7)
    session = ExplainerSession(build_lewis(trained, make_table(seed_rows(rng, 60))))
    monitors = MonitorSet(session)
    desc = monitors.add(monitors_payload)
    return session, monitors, desc


class TestWatch:
    def test_alert_fires_and_watch_sees_it(self, trained):
        session, monitors, desc = shifted_session(
            trained,
            {
                "kind": "score",
                "params": {"attribute": "a", "value": 2, "baseline": 0},
                "threshold": 0.05,
            },
        )
        result = {}
        thread = threading.Thread(
            target=lambda: result.update(monitors.watch(cursor=0, timeout=10))
        )
        thread.start()
        time.sleep(0.05)
        session.update({"insert": [{"a": 2, "b": 0, "c": 0}] * 200})
        monitors.refresh()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert result["alerts"], result
        alert = result["alerts"][0]
        assert alert["monitor_id"] == desc["id"]
        assert alert["seq"] == 1
        assert alert["wal_seq"] == 1  # table_version for in-memory sessions
        assert result["cursor"] == alert["seq"]
        assert not result["timed_out"]
        assert not result["cursor_truncated"]
        # the same alert is served again to a cursor-0 reconnect
        again = monitors.watch(cursor=0, timeout=0)
        assert [a["seq"] for a in again["alerts"]] == [1]

    def test_up_to_date_cursor_times_out_empty(self, trained):
        _, monitors, _ = shifted_session(
            trained, {"kind": "fairness", "params": {"attribute": "b"}}
        )
        start = time.monotonic()
        out = monitors.watch(cursor=0, timeout=0.2)
        assert time.monotonic() - start >= 0.2
        assert out["timed_out"] and out["alerts"] == []
        assert out["cursor"] == 0

    def test_cursor_truncated_when_ring_overflows(self, trained):
        from collections import deque

        session, monitors, _ = shifted_session(
            trained,
            {
                "kind": "score",
                "params": {"attribute": "a", "value": 2, "baseline": 0},
                "cusum": {"limit": 0.01, "slack": 0.0},
            },
        )
        monitors._alerts = deque(maxlen=2)  # shrink the ring for the test
        for value in (2, 0, 2, 0, 2, 0):
            session.update({"insert": [{"a": value, "b": 0, "c": 0}] * 120})
            monitors.refresh()
        total = monitors.stats()["alerts_total"]
        assert total > 2  # the oscillation re-fired CUSUM past the ring size
        out = monitors.watch(cursor=0, timeout=0)
        assert out["cursor_truncated"]
        assert [a["seq"] for a in out["alerts"]] == [total - 1, total]
        # a caught-up cursor is not flagged
        assert not monitors.watch(cursor=total, timeout=0)["cursor_truncated"]


class TestJournalRecovery:
    def _fire_one_alert(self, trained, path):
        rng = np.random.default_rng(3)
        session = ExplainerSession(build_lewis(trained, make_table(seed_rows(rng, 50))))
        monitors = MonitorSet(session, journal=MonitorJournal(path))
        kept = monitors.add(
            {
                "kind": "score",
                "params": {"attribute": "a", "value": 2, "baseline": 0},
                "threshold": 0.05,
                "cusum": {"limit": 0.5},
            }
        )
        doomed = monitors.add({"kind": "fairness", "params": {"attribute": "b"}})
        monitors.remove(doomed["id"])
        session.update({"insert": [{"a": 2, "b": 0, "c": 0}] * 200})
        monitors.refresh()
        assert monitors.stats()["alerts_total"] >= 1
        return session, monitors, kept

    def test_round_trip_restores_monitors_alerts_and_detectors(
        self, trained, tmp_path
    ):
        path = tmp_path / "monitors.jsonl"
        session, monitors, kept = self._fire_one_alert(trained, path)
        before = monitors._monitors[kept["id"]]
        total = monitors.stats()["alerts_total"]
        monitors.close()  # "crash": only the journal survives

        # the contract: detectors resume from the *last journaled*
        # checkpoint (the state snapshot in the final alert record),
        # not from whatever the live accumulators drifted to afterwards
        journal = MonitorJournal(path)
        checkpoint = [
            r["data"]["states"] for r in journal.replay() if r["kind"] == "alert"
        ][-1]

        recovered = MonitorSet(session, journal=journal)
        assert set(recovered._monitors) == {kept["id"]}
        state = recovered._monitors[kept["id"]]
        assert state["baseline"] == before["baseline"]
        assert state["alerts"] == before["alerts"]
        assert recovered.stats()["alerts_total"] == total
        assert {
            d.name: d.export_state() for d in state["detectors"]
        } == checkpoint
        # replayed alerts are served to watchers
        replayed = recovered.watch(cursor=0, timeout=0)
        assert [a["monitor_id"] for a in replayed["alerts"]] == [kept["id"]] * total
        # ids continue past the recovered maximum
        fresh = recovered.add({"kind": "monotonicity", "params": {"attribute": "a"}})
        assert int(fresh["id"].lstrip("m")) > int(kept["id"].lstrip("m"))
        recovered.close()

    def test_torn_tail_is_truncated(self, trained, tmp_path):
        path = tmp_path / "monitors.jsonl"
        _, monitors, kept = self._fire_one_alert(trained, path)
        last_seq = monitors._journal.last_seq
        monitors.close()
        good = path.read_bytes()
        path.write_bytes(good + b'{"seq": 99, "kind": "alert", "da')  # torn append

        journal = MonitorJournal(path)
        assert journal.last_seq == last_seq
        assert path.read_bytes() == good  # the tail was cut, nothing else
        journal.close()

    def test_mid_log_corruption_refuses_replay(self, trained, tmp_path):
        path = tmp_path / "monitors.jsonl"
        _, monitors, _ = self._fire_one_alert(trained, path)
        monitors.close()
        lines = path.read_bytes().splitlines(keepends=True)
        assert len(lines) >= 3
        record = json.loads(lines[1])
        record["data"] = {"id": "tampered"}  # body no longer matches the crc
        lines[1] = json.dumps(record).encode() + b"\n"
        path.write_bytes(b"".join(lines))
        with pytest.raises(StoreError, match="corrupt monitor journal"):
            MonitorJournal(path)


class TestDurableCursor:
    def test_compaction_counts_truncated_cursor(self, trained, tmp_path):
        rng = np.random.default_rng(5)
        store = ArtifactStore(tmp_path / "store")
        session = create_tenant(
            store, "t", build_lewis(trained, make_table(seed_rows(rng, 40)))
        )
        monitors = MonitorSet(
            session, journal=MonitorJournal(store.monitor_journal_path("t"))
        )
        desc = monitors.add({"kind": "monotonicity", "params": {"attribute": "a"}})
        session.update({"insert": [{"a": 1, "b": 1, "c": 1}] * 5})
        checkpoint_session(store, session, "t")  # compacts the replayed range
        assert not session.log.cursor_valid(desc["cursor"])
        session.update({"insert": [{"a": 0, "b": 2, "c": 1}] * 5})
        monitors.refresh()
        state = monitors.get(desc["id"])
        assert state["truncated_cursors"] == 1
        assert state["cursor"] == session.log.last_seq
        assert state["batches_seen"] == 2  # seqs stay contiguous across compaction
        assert state["summary"] == rebuild_summary(session.lewis, monitors._monitors[desc["id"]]["spec"])
        monitors.close()
        session.close()
