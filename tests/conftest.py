"""Shared fixtures: small datasets and trained models, cached per session.

Model training is the slow part of the suite, so every fixture that fits
a model is session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Lewis, fit_table_model, load_dataset, train_test_split
from repro.causal.equations import linear_threshold, logistic_binary, root_categorical
from repro.causal.scm import StructuralCausalModel, StructuralEquation
from repro.data.table import Column, Table


@pytest.fixture(scope="session")
def german_bundle():
    """Small German replica (600 rows) for fast end-to-end tests."""
    return load_dataset("german", n_rows=600, seed=0)


@pytest.fixture(scope="session")
def german_model(german_bundle):
    """Random forest trained on the German replica's training split."""
    train, _test = train_test_split(german_bundle.table, seed=0)
    return fit_table_model(
        "random_forest",
        train,
        german_bundle.feature_names,
        german_bundle.label,
        seed=0,
        n_estimators=15,
        max_depth=8,
    )


@pytest.fixture(scope="session")
def german_lewis(german_bundle, german_model):
    """A Lewis explainer over the German test split."""
    _train, test = train_test_split(german_bundle.table, seed=0)
    return Lewis(
        german_model,
        data=test,
        graph=german_bundle.graph,
        positive_outcome=german_bundle.positive_label,
    )


@pytest.fixture(scope="session")
def toy_scm():
    """Tiny 3-node chain SCM: Z -> X -> Y with known mechanisms.

    Z is binary, X ternary increasing in Z, Y binary increasing in X and Z
    (Z is a confounder of nothing here but parent of both X and Y when
    used with edges Z->X, Z->Y, X->Y).
    """
    eqs = [
        StructuralEquation("Z", (), (0, 1), root_categorical([0.5, 0.5])),
        StructuralEquation(
            "X",
            ("Z",),
            (0, 1, 2),
            linear_threshold({"Z": 1.0}, cuts=[0.4, 1.2], noise_scale=0.8),
        ),
        StructuralEquation(
            "Y",
            ("X", "Z"),
            (0, 1),
            logistic_binary({"X": 1.4, "Z": 0.8}, bias=-1.8),
        ),
    ]
    return StructuralCausalModel(eqs)


@pytest.fixture(scope="session")
def toy_table(toy_scm):
    """A 4000-row sample from the toy SCM."""
    return toy_scm.sample(4_000, seed=42)


@pytest.fixture()
def small_table():
    """A deterministic 8-row table used by unit tests."""
    return Table.from_dict(
        {
            "color": ["red", "blue", "red", "green", "blue", "red", "green", "blue"],
            "size": [0, 1, 2, 1, 0, 2, 2, 1],
            "label": ["no", "yes", "yes", "no", "no", "yes", "yes", "no"],
        },
        domains={
            "color": ["red", "green", "blue"],
            "size": [0, 1, 2],
            "label": ["no", "yes"],
        },
        unordered=["color"],
    )


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(123)


def make_linear_data(n: int, d: int, seed: int = 0, noise: float = 0.3):
    """Linearly separable-ish classification data for model tests."""
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, d))
    w = rng.normal(size=d)
    logits = X @ w + noise * rng.normal(size=n)
    y = (logits > 0).astype(int)
    return X, y, w


@pytest.fixture()
def linear_data():
    """(X, y, w) for a 500x6 near-separable binary problem."""
    return make_linear_data(500, 6, seed=1)
