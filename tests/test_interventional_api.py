"""Tests for the facade-level do-operator query (Example 2.1)."""

import numpy as np
import pytest

from repro import Lewis
from repro.causal.graph import CausalDiagram
from repro.data.table import Column, Table


@pytest.fixture(scope="module")
def confounded_lewis(toy_scm):
    """Lewis over the toy Z -> X -> Y SCM with f = 1{X + Z >= 2}."""
    table = toy_scm.sample(30_000, seed=61).select(["Z", "X"])
    return (
        Lewis(
            lambda t: (t.codes("X") + t.codes("Z")) >= 2,
            data=table,
            feature_names=["Z", "X"],
            graph=toy_scm.diagram.subgraph(["Z", "X"]),
            infer_orderings=False,
        ),
        toy_scm,
    )


class TestInterventionalProbability:
    def test_matches_scm_truth(self, confounded_lewis):
        lewis, scm = confounded_lewis
        for x_code in (0, 1, 2):
            intervened = scm.sample(30_000, seed=77, interventions={"X": x_code})
            truth = float(
                ((intervened.codes("X") + intervened.codes("Z")) >= 2).mean()
            )
            estimate = lewis.interventional_probability({"X": x_code})
            assert estimate == pytest.approx(truth, abs=0.03)

    def test_differs_from_conditional_under_confounding(self, confounded_lewis):
        """At X = 1 the outcome depends on the confounder Z, so
        P(o | X=1) = P(Z=1 | X=1) is inflated above
        P(o | do(X=1)) = P(Z=1)."""
        lewis, _scm = confounded_lewis
        do_x = lewis.interventional_probability({"X": 1})
        conditional = lewis.estimator.positive_rate({"X": 1})
        assert conditional > do_x + 0.02

    def test_negative_outcome_complements(self, confounded_lewis):
        lewis, _scm = confounded_lewis
        pos = lewis.interventional_probability({"X": 1})
        neg = lewis.interventional_probability({"X": 1}, positive=False)
        assert pos + neg == pytest.approx(1.0, abs=1e-9)

    def test_with_context(self, confounded_lewis):
        lewis, _scm = confounded_lewis
        # Given Z = 1, do(X = 1) gives X + Z = 2 >= 2 deterministically.
        value = lewis.interventional_probability({"X": 1}, context={"Z": 1})
        assert value == pytest.approx(1.0, abs=0.01)

    def test_without_graph_is_conditional(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 2, 5_000)
        table = Table([Column.from_codes("x", x, (0, 1))])
        lewis = Lewis(
            lambda t: t.codes("x") == 1,
            data=table,
            feature_names=["x"],
            graph=None,
            infer_orderings=False,
        )
        assert lewis.interventional_probability({"x": 1}) == pytest.approx(1.0)
