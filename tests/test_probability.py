"""Unit tests for empirical probability estimation and adjustment sums."""

import numpy as np
import pytest

from repro.data.table import Table
from repro.estimation.adjustment import adjusted_probability
from repro.estimation.probability import FrequencyEstimator
from repro.utils.exceptions import EstimationError


@pytest.fixture()
def counts_table():
    """A table with hand-countable joint frequencies.

    12 rows: X in {0,1}, O in {0,1}, C in {0,1}.
    """
    x = [0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1]
    o = [0, 0, 0, 0, 1, 1, 0, 1, 1, 1, 1, 1]
    c = [0, 0, 1, 1, 0, 1, 0, 0, 1, 1, 1, 0]
    return Table.from_dict(
        {"X": x, "O": o, "C": c},
        domains={"X": [0, 1], "O": [0, 1], "C": [0, 1]},
    )


class TestFrequencyEstimator:
    def test_marginal(self, counts_table):
        est = FrequencyEstimator(counts_table)
        assert est.probability({"O": 1}) == pytest.approx(7 / 12)

    def test_joint(self, counts_table):
        est = FrequencyEstimator(counts_table)
        assert est.probability({"O": 1, "X": 1}) == pytest.approx(5 / 12)

    def test_conditional(self, counts_table):
        est = FrequencyEstimator(counts_table)
        assert est.probability({"O": 1}, {"X": 1}) == pytest.approx(5 / 6)
        assert est.probability({"O": 1}, {"X": 0}) == pytest.approx(2 / 6)

    def test_conditional_on_two_columns(self, counts_table):
        est = FrequencyEstimator(counts_table)
        assert est.probability({"O": 1}, {"X": 0, "C": 1}) == pytest.approx(1 / 3)

    def test_event_overlapping_condition_consistent(self, counts_table):
        est = FrequencyEstimator(counts_table)
        assert est.probability({"X": 1}, {"X": 1}) == 1.0

    def test_event_overlapping_condition_contradictory(self, counts_table):
        est = FrequencyEstimator(counts_table)
        assert est.probability({"X": 0}, {"X": 1}) == 0.0

    def test_empty_event_is_one(self, counts_table):
        est = FrequencyEstimator(counts_table)
        assert est.probability({}, {"X": 1}) == 1.0

    def test_no_support_raises_without_smoothing(self, counts_table):
        est = FrequencyEstimator(counts_table)
        # There are no rows with X=0, O=1, C=0... actually there is one;
        # use an impossible three-way combination instead.
        extended = counts_table.with_column(
            counts_table.column("C").renamed("D")
        )
        est2 = FrequencyEstimator(extended)
        with pytest.raises(EstimationError):
            est2.probability({"O": 1}, {"X": 0, "C": 0, "D": 1})

    def test_probability_or_default(self, counts_table):
        extended = counts_table.with_column(counts_table.column("C").renamed("D"))
        est = FrequencyEstimator(extended)
        val = est.probability_or_default({"O": 1}, {"X": 0, "C": 0, "D": 1}, default=0.25)
        assert val == 0.25

    def test_smoothing_keeps_defined(self, counts_table):
        est = FrequencyEstimator(counts_table, alpha=1.0)
        extended_cond = {"X": 0, "C": 0}
        value = est.probability({"O": 1}, extended_cond)
        assert 0.0 < value < 1.0

    def test_smoothing_shrinks_toward_uniform(self, counts_table):
        raw = FrequencyEstimator(counts_table).probability({"O": 1}, {"X": 1})
        smooth = FrequencyEstimator(counts_table, alpha=10.0).probability(
            {"O": 1}, {"X": 1}
        )
        assert abs(smooth - 0.5) < abs(raw - 0.5)

    def test_negative_alpha_rejected(self, counts_table):
        with pytest.raises(ValueError):
            FrequencyEstimator(counts_table, alpha=-1)

    def test_count(self, counts_table):
        est = FrequencyEstimator(counts_table)
        assert est.count({"X": 1, "O": 1}) == 5

    def test_label_level_wrapper(self, counts_table):
        est = FrequencyEstimator(counts_table)
        assert est.probability_labels({"O": 1}, {"X": 1}) == pytest.approx(5 / 6)

    def test_group_probabilities_sum_to_one(self, counts_table):
        est = FrequencyEstimator(counts_table)
        groups = est.group_probabilities(["C", "X"])
        assert sum(groups.values()) == pytest.approx(1.0)

    def test_group_probabilities_conditioned(self, counts_table):
        est = FrequencyEstimator(counts_table)
        groups = est.group_probabilities(["C"], {"X": 1})
        assert groups[(0,)] == pytest.approx(3 / 6)
        assert groups[(1,)] == pytest.approx(3 / 6)

    def test_group_probabilities_no_support(self, counts_table):
        extended = counts_table.with_column(counts_table.column("C").renamed("D"))
        est = FrequencyEstimator(extended)
        with pytest.raises(EstimationError):
            est.group_probabilities(["C"], {"X": 0, "C": 0, "D": 1})

    def test_mask_cache_consistency(self, counts_table):
        est = FrequencyEstimator(counts_table)
        first = est.probability({"O": 1}, {"X": 1})
        second = est.probability({"O": 1}, {"X": 1})
        assert first == second


class TestAdjustedProbability:
    def test_empty_adjustment_is_plain_conditional(self, counts_table):
        est = FrequencyEstimator(counts_table)
        value = adjusted_probability(
            est, event={"O": 1}, treatment={"X": 1}, adjustment=[]
        )
        assert value == pytest.approx(5 / 6)

    def test_backdoor_sum_by_hand(self, counts_table):
        est = FrequencyEstimator(counts_table)
        # sum_c P(O=1 | C=c, X=1) P(C=c)
        expected = est.probability({"O": 1}, {"C": 0, "X": 1}) * est.probability(
            {"C": 0}
        ) + est.probability({"O": 1}, {"C": 1, "X": 1}) * est.probability({"C": 1})
        value = adjusted_probability(
            est, event={"O": 1}, treatment={"X": 1}, adjustment=["C"]
        )
        assert value == pytest.approx(expected)

    def test_weight_condition_changes_mixture(self, counts_table):
        est = FrequencyEstimator(counts_table)
        plain = adjusted_probability(
            est, event={"O": 1}, treatment={"X": 1}, adjustment=["C"]
        )
        weighted = adjusted_probability(
            est,
            event={"O": 1},
            treatment={"X": 1},
            adjustment=["C"],
            weight_condition={"X": 0},
        )
        expected = est.probability({"O": 1}, {"C": 0, "X": 1}) * est.probability(
            {"C": 0}, {"X": 0}
        ) + est.probability({"O": 1}, {"C": 1, "X": 1}) * est.probability(
            {"C": 1}, {"X": 0}
        )
        assert weighted == pytest.approx(expected)
        assert weighted != pytest.approx(plain) or True  # may coincide

    def test_context_restricts_everything(self, counts_table):
        est = FrequencyEstimator(counts_table)
        value = adjusted_probability(
            est,
            event={"O": 1},
            treatment={"X": 1},
            adjustment=[],
            context={"C": 1},
        )
        assert value == pytest.approx(est.probability({"O": 1}, {"X": 1, "C": 1}))

    def test_adjustment_overlapping_context_dropped(self, counts_table):
        est = FrequencyEstimator(counts_table)
        a = adjusted_probability(
            est, event={"O": 1}, treatment={"X": 1}, adjustment=["C"], context={"C": 1}
        )
        b = est.probability({"O": 1}, {"X": 1, "C": 1})
        assert a == pytest.approx(b)

    def test_result_is_probability(self, counts_table):
        est = FrequencyEstimator(counts_table)
        value = adjusted_probability(
            est, event={"O": 0}, treatment={"X": 0}, adjustment=["C"]
        )
        assert 0.0 <= value <= 1.0
