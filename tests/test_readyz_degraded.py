"""/readyz under degradation: each subsystem check flips readiness alone."""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.service.server import create_server
from repro.store import DeltaLog, DurableSession, Registry


def tiny_model(features: Table) -> np.ndarray:
    return (features.codes("a") + features.codes("b")) >= 2


def make_session(tmp_path) -> DurableSession:
    rng = np.random.default_rng(11)
    n = 60
    table = Table.from_dict(
        {"a": rng.integers(0, 3, n).tolist(), "b": rng.integers(0, 3, n).tolist()},
        domains={"a": [0, 1, 2], "b": [0, 1, 2]},
    )
    lewis = Lewis(
        tiny_model,
        data=table,
        feature_names=["a", "b"],
        attributes=["a", "b"],
        infer_orderings=False,
    )
    return DurableSession(lewis, DeltaLog(tmp_path / "wal.jsonl"), tenant="t")


def get(base, path):
    try:
        with urllib.request.urlopen(base + path, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    session = make_session(tmp_path_factory.mktemp("readyz"))
    server = create_server(session=session, port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    yield server, session, f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    server.monitors.close()
    session.close()


class TestReadyzDegradation:
    def test_healthy_server_reports_every_subsystem_ok(self, served):
        _server, _session, base = served
        status, report = get(base, "/readyz")
        assert status == 200
        assert report["status"] == "ready"
        checks = report["checks"]
        for name in ("accepting", "queue", "solver_pool", "wal"):
            assert checks[name]["ok"], (name, checks[name])
        assert checks["wal"]["degraded"] is None

    def test_draining_flips_accepting_but_not_liveness(self, served):
        server, _session, base = served
        server.draining = True
        try:
            status, report = get(base, "/readyz")
            assert status == 503
            assert report["status"] == "unavailable"
            assert report["checks"]["accepting"] == {
                "ok": False, "draining": True,
            }
            assert report["request_id"]  # joinable to traces even when failing
            status, body = get(base, "/healthz")
            assert status == 200  # liveness never reflects drain state
            assert body["draining"] is True
        finally:
            server.draining = False

    def test_read_only_degraded_wal_flips_wal_check(self, served):
        _server, session, base = served
        session.log._degraded = "fsync failed: injected disk full"
        try:
            status, report = get(base, "/readyz")
            assert status == 503
            wal = report["checks"]["wal"]
            assert wal["ok"] is False
            assert "disk full" in wal["degraded"]
            # the other checks are unaffected: degradation is labeled
            assert report["checks"]["queue"]["ok"]
            assert report["checks"]["accepting"]["ok"]
        finally:
            session.log._degraded = None

    def test_saturated_queue_flips_queue_check(self, served):
        _server, session, base = served
        real_stats = session.stats

        def saturated():
            stats = real_stats()
            stats["scheduler"] = dict(
                stats["scheduler"], queue_depth=8, max_queue=8, shed=3
            )
            return stats

        session.stats = saturated
        try:
            status, report = get(base, "/readyz")
            assert status == 503
            queue = report["checks"]["queue"]
            assert queue == {
                "ok": False, "depth": 8, "max_queue": 8, "shed": 3,
                "expired": queue["expired"],
            }
        finally:
            del session.stats

    def test_solver_pool_failures_reported_but_never_flip_readiness(
        self, served
    ):
        _server, session, base = served
        session.lewis.solver_stats = lambda: {
            "pool_failures": 4, "pool_fallbacks": 4,
        }
        try:
            status, report = get(base, "/readyz")
            assert status == 200  # the inline fallback contains pool loss
            pool = report["checks"]["solver_pool"]
            assert pool["ok"] is True
            assert pool["pool_failures"] == 4
        finally:
            del session.lewis.solver_stats

    def test_unwritable_store_root_flips_store_check(
        self, tmp_path, monkeypatch
    ):
        registry = Registry(tmp_path / "store")
        server = create_server(registry=registry, port=0)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        host, port = server.server_address[:2]
        base = f"http://{host}:{port}"
        try:
            status, report = get(base, "/readyz")
            assert status == 200
            assert report["checks"]["store"]["writable"] is True

            real_access = os.access
            root = str(registry.store.root)

            def read_only(path, mode, **kwargs):
                if str(path).startswith(root) and mode & os.W_OK:
                    return False
                return real_access(path, mode, **kwargs)

            monkeypatch.setattr(
                "repro.service.server.os.access", read_only
            )
            status, report = get(base, "/readyz")
            assert status == 503
            store = report["checks"]["store"]
            assert store["ok"] is False
            assert store["writable"] is False
            assert report["request_id"]
        finally:
            server.shutdown()
            server.server_close()
            if server.replication is not None:
                server.replication.stop()
            server.monitors.close()
            registry.close()
