"""CLI smoke tests for ``--version`` and the ``serve`` subcommand."""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro import __version__
from repro.cli import build_parser, main

SRC = str(Path(__file__).resolve().parents[1] / "src")


class TestVersionFlag:
    def test_version_prints_and_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_serve_parser_flags(self):
        parser = build_parser()
        args = parser.parse_args(
            ["serve", "--port", "0", "--cache-mb", "8", "--dataset", "german"]
        )
        assert args.port == 0
        assert args.cache_mb == 8.0
        assert args.func.__name__ == "cmd_serve"

    def test_serve_help_mentions_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--port" in out and "--cache-mb" in out


class TestServeSmoke:
    def test_serve_answers_health_and_explain(self):
        """Boot the real server process, hit it, and shut it down."""
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = SRC + (os.pathsep + existing if existing else "")
        env["PYTHONUNBUFFERED"] = "1"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--dataset", "german", "--rows", "200", "--port", "0",
                "--cache-mb", "4",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            env=env,
            text=True,
        )
        try:
            deadline = time.time() + 120
            banner = ""
            while time.time() < deadline:
                line = process.stdout.readline()
                if not line and process.poll() is not None:
                    raise AssertionError(f"server exited early: {banner}")
                banner += line
                match = re.search(r"http://([\d.]+):(\d+)", line or "")
                if match:
                    break
            else:
                raise AssertionError(f"no listening banner within 120s: {banner}")
            base = f"http://{match.group(1)}:{match.group(2)}"
            with urllib.request.urlopen(f"{base}/v1/health", timeout=10) as r:
                health = json.loads(r.read())
            assert health["status"] == "ok"
            request = urllib.request.Request(
                f"{base}/v1/explain/global",
                data=json.dumps({"max_pairs_per_attribute": 2}).encode(),
            )
            with urllib.request.urlopen(request, timeout=60) as r:
                body = json.loads(r.read())
            assert r.status == 200
            assert body["result"]["ranking"]
        finally:
            process.send_signal(signal.SIGINT)
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=15)
