"""Unit tests for the byte-bounded LRU and the service result cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.service.cache import ResultCache, canonical, payload_bytes
from repro.utils.lru import ByteBudgetLRU


class TestByteBudgetLRU:
    def test_get_put_and_hit_miss_counters(self):
        lru = ByteBudgetLRU(max_bytes=100)
        assert lru.get("k") is None
        lru.put("k", "value", size=5)
        assert lru.get("k") == "value"
        stats = lru.stats()
        assert stats == {
            "entries": 1,
            "bytes": 5,
            "max_bytes": 100,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "hit_rate": 0.5,
        }

    def test_lru_eviction_by_bytes(self):
        lru = ByteBudgetLRU(max_bytes=10)
        lru.put("a", "A", size=4)
        lru.put("b", "B", size=4)
        lru.get("a")  # "a" is now most recent
        lru.put("c", "C", size=4)  # evicts "b"
        assert "a" in lru and "c" in lru and "b" not in lru
        assert lru.stats()["evictions"] == 1
        assert lru.bytes <= 10

    def test_eviction_by_entry_count(self):
        lru = ByteBudgetLRU(max_entries=2)
        for key in "abc":
            lru.put(key, key, size=1)
        assert len(lru) == 2 and "a" not in lru

    def test_oversized_entry_is_evicted_immediately(self):
        lru = ByteBudgetLRU(max_bytes=10)
        lru.put("big", "x", size=50)
        assert len(lru) == 0
        assert lru.stats()["evictions"] == 1

    def test_replace_updates_bytes(self):
        lru = ByteBudgetLRU(max_bytes=100)
        lru.put("k", "v1", size=10)
        lru.put("k", "v2", size=30)
        assert lru.bytes == 30 and len(lru) == 1

    def test_discard_where(self):
        lru = ByteBudgetLRU()
        for i in range(5):
            lru.put(("v", i), i, size=1)
        dropped = lru.discard_where(lambda k: k[1] < 3)
        assert dropped == 3 and len(lru) == 2
        assert lru.stats()["evictions"] == 0  # invalidation is not eviction

    def test_default_sizeof_uses_nbytes(self):
        lru = ByteBudgetLRU()
        array = np.zeros(10, dtype=np.int64)
        lru.put("t", array)
        assert lru.bytes == array.nbytes

    def test_validation(self):
        with pytest.raises(ValueError):
            ByteBudgetLRU(max_bytes=-1)
        with pytest.raises(ValueError):
            ByteBudgetLRU(max_entries=0)


class TestCanonical:
    def test_dict_order_and_sequence_type_insensitive(self):
        a = canonical({"x": [1, 2], "y": {"b": 2, "a": 1}})
        b = canonical({"y": {"a": 1, "b": 2}, "x": (1, 2)})
        assert a == b

    def test_numpy_scalars_collapse(self):
        assert canonical({"k": np.int64(3)}) == canonical({"k": 3})

    def test_distinct_payloads_stay_distinct(self):
        assert canonical({"x": 1}) != canonical({"x": 2})
        assert canonical({"x": 1}) != canonical({"y": 1})


class TestResultCache:
    def test_round_trip_and_stats(self):
        cache = ResultCache(max_bytes=1 << 20)
        key = ResultCache.key("fp", 0, "explain_global", {"attributes": None})
        assert cache.get(key) is None
        cache.put(key, {"ranking": ["a", "b"]})
        assert cache.get(key) == {"ranking": ["a", "b"]}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["bytes"] == payload_bytes({"ranking": ["a", "b"]})

    def test_version_partitions_keys(self):
        cache = ResultCache()
        k0 = ResultCache.key("fp", 0, "g", {})
        k1 = ResultCache.key("fp", 1, "g", {})
        cache.put(k0, "old")
        assert cache.get(k1) is None

    def test_purge_stale_is_targeted(self):
        cache = ResultCache()
        cache.put(ResultCache.key("fp", 0, "g", {}), "stale")
        cache.put(ResultCache.key("fp", 1, "g", {}), "current")
        cache.put(ResultCache.key("other", 0, "g", {}), "other-session")
        dropped = cache.purge_stale("fp", 1)
        assert dropped == 1
        assert cache.get(ResultCache.key("fp", 1, "g", {})) == "current"
        assert cache.get(ResultCache.key("other", 0, "g", {})) == "other-session"
        assert cache.stats()["invalidations"] == 1

    def test_byte_budget_enforced(self):
        cache = ResultCache(max_bytes=payload_bytes({"v": 0}) * 2)
        for i in range(10):
            cache.put(ResultCache.key("fp", 0, "g", {"i": i}), {"v": i})
        assert len(cache) <= 2
        assert cache.stats()["evictions"] >= 8
