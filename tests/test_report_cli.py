"""Unit tests for text rendering and the command-line interface."""

import pytest

from repro.cli import main
from repro.core.explanations import (
    AttributeScore,
    GlobalExplanation,
    LocalContribution,
    LocalExplanation,
)
from repro.core.recourse import Recourse, RecourseAction
from repro.report import (
    render_comparison,
    render_global,
    render_local,
    render_recourse,
    render_scores_table,
)


@pytest.fixture()
def global_explanation():
    return GlobalExplanation(
        context={},
        attribute_scores=[
            AttributeScore("age", 0.9, 0.4, 0.5),
            AttributeScore("savings", 0.2, 0.8, 0.7),
        ],
    )


class TestRenderGlobal:
    def test_chart_contains_attribute_and_value(self, global_explanation):
        out = render_global(global_explanation, title="T")
        assert out.startswith("T")
        assert "age" in out and "savings" in out
        assert "0.50" in out and "0.70" in out

    def test_chart_sorted_by_requested_score(self, global_explanation):
        out = render_global(global_explanation, kind="necessity")
        assert out.index("age") < out.index("savings")
        out = render_global(global_explanation, kind="sufficiency")
        assert out.index("savings") < out.index("age")

    def test_bar_length_monotone(self, global_explanation):
        out = render_global(global_explanation)
        lines = [l for l in out.splitlines() if "#" in l or "." in l]
        hashes = [l.count("#") for l in lines]
        assert hashes == sorted(hashes, reverse=True)

    def test_context_line(self):
        exp = GlobalExplanation(
            context={"sex": "Male"},
            attribute_scores=[AttributeScore("a", 0.1, 0.1, 0.1)],
        )
        assert "sex=Male" in render_global(exp)

    def test_scores_table_has_all_columns(self, global_explanation):
        out = render_scores_table(global_explanation)
        assert "NEC" in out and "SUF" in out and "NESUF" in out


class TestRenderLocal:
    def _explanation(self):
        return LocalExplanation(
            individual={"age": "<25"},
            outcome_positive=False,
            contributions=[
                LocalContribution("age", "<25", positive=0.0, negative=0.8),
                LocalContribution("savings", "high", positive=0.6, negative=0.0),
            ],
        )

    def test_outcome_and_signs(self):
        out = render_local(self._explanation(), title="L")
        assert "outcome: negative" in out
        assert "net=-0.80" in out
        assert "net=+0.60" in out

    def test_signed_bars_direction(self):
        out = render_local(self._explanation())
        negative_line = next(l for l in out.splitlines() if "age" in l)
        positive_line = next(l for l in out.splitlines() if "savings" in l)
        assert "-" in negative_line.split("net")[0]
        assert "+" in positive_line.split("net")[0]


class TestRenderRecourse:
    def test_empty(self):
        recourse = Recourse(
            actions=[], total_cost=0.0, estimated_sufficiency=1.0,
            estimated_probability=0.9, threshold=0.9, n_constraints=0, n_variables=0,
        )
        assert "No action needed" in render_recourse(recourse)

    def test_actions_listed(self):
        recourse = Recourse(
            actions=[RecourseAction("savings", "<100 DM", ">1000 DM", 3.0)],
            total_cost=3.0,
            estimated_sufficiency=0.9,
            estimated_probability=0.92,
            threshold=0.9,
            n_constraints=2,
            n_variables=4,
        )
        out = render_recourse(recourse, title="R")
        assert "<100 DM" in out and ">1000 DM" in out
        assert "90%" in out


class TestRenderComparison:
    def test_rank_table(self):
        out = render_comparison(
            {"LEWIS": ["a", "b"], "SHAP": ["b", "a"]}, title="cmp"
        )
        lines = out.splitlines()
        assert "LEWIS" in lines[1] and "SHAP" in lines[1]
        a_row = next(l for l in lines if l.split() and l.split()[0] == "a")
        assert "1" in a_row and "2" in a_row

    def test_missing_item_marked(self):
        out = render_comparison({"A": ["x", "y"], "B": ["x"]})
        y_row = next(l for l in out.splitlines() if l.startswith("y"))
        assert "-1" in y_row


class TestCLI:
    def test_explain_global(self, capsys):
        code = main(["explain", "--dataset", "german", "--rows", "300"])
        out = capsys.readouterr().out
        assert code == 0
        assert "NEC" in out

    def test_explain_chart(self, capsys):
        code = main(["explain", "--dataset", "german", "--rows", "300", "--chart"])
        assert code == 0
        assert "#" in capsys.readouterr().out

    def test_explain_contextual(self, capsys):
        code = main(
            ["explain", "--dataset", "german", "--rows", "300", "--context", "sex=Male"]
        )
        assert code == 0
        assert "contextual" in capsys.readouterr().out

    def test_explain_bad_context(self):
        with pytest.raises(SystemExit):
            main(["explain", "--rows", "300", "--context", "sexMale"])

    def test_local(self, capsys):
        code = main(["local", "--dataset", "german", "--rows", "300", "--negative"])
        out = capsys.readouterr().out
        assert code == 0
        assert "outcome: negative" in out

    def test_recourse(self, capsys):
        code = main(
            ["recourse", "--dataset", "german", "--rows", "300", "--alpha", "0.5"]
        )
        out = capsys.readouterr().out
        assert code in (0, 2)  # feasible or honestly infeasible
        if code == 0:
            assert "sufficiency" in out

    def test_recourse_no_actionable(self, capsys):
        code = main(["recourse", "--dataset", "compas", "--rows", "300"])
        assert code == 1

    def test_audit(self, capsys):
        code = main(["audit", "--dataset", "german", "--rows", "300"])
        out = capsys.readouterr().out
        assert code in (0, 3)
        assert "sex" in out

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["explain", "--dataset", "mnist"])
