"""Replication building blocks: batches, ship faults, appliers, epochs."""

from __future__ import annotations

import numpy as np
import pytest

import repro.faults as faults
from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.replication import (
    EpochStore,
    FencedError,
    ReplicaApplier,
    ReplicationManager,
    build_batch,
)
from repro.store import DeltaLog, DurableSession, Registry
from repro.utils.exceptions import StoreError


def tiny_model(features: Table) -> np.ndarray:
    return (features.codes("a") + features.codes("b")) >= 2


def make_storable_lewis(seed=3, n=60):
    """A Lewis over a fitted (serialisable) model, for registry tests."""
    from repro import fit_table_model

    rng = np.random.default_rng(seed)
    rows = {
        "a": rng.integers(0, 3, n).tolist(),
        "b": rng.integers(0, 3, n).tolist(),
    }
    rows["y"] = [int(a + b >= 2) for a, b in zip(rows["a"], rows["b"])]
    table = Table.from_dict(
        rows, domains={"a": [0, 1, 2], "b": [0, 1, 2], "y": [0, 1]}
    )
    model = fit_table_model("logistic", table, ["a", "b"], "y", seed=seed)
    return Lewis(
        model,
        data=table.select(["a", "b"]),
        attributes=["a", "b"],
        positive_outcome=1,
        infer_orderings=False,
    )


def make_session(tmp_path, name="wal.jsonl"):
    rng = np.random.default_rng(5)
    n = 60
    table = Table.from_dict(
        {"a": rng.integers(0, 3, n).tolist(), "b": rng.integers(0, 3, n).tolist()},
        domains={"a": [0, 1, 2], "b": [0, 1, 2]},
    )
    lewis = Lewis(
        tiny_model,
        data=table,
        feature_names=["a", "b"],
        attributes=["a", "b"],
        infer_orderings=False,
    )
    return DurableSession(lewis, DeltaLog(tmp_path / name), tenant="t")


@pytest.fixture()
def leader(tmp_path):
    session = make_session(tmp_path, "leader.jsonl")
    yield session
    session.close()


@pytest.fixture()
def follower(tmp_path):
    session = make_session(tmp_path, "follower.jsonl")
    yield session
    session.close()


def put_rows(session, k):
    for i in range(k):
        session.update({"insert": [{"a": i % 3, "b": 1}]})


class TestBuildBatch:
    def test_geometry_and_records(self, leader):
        put_rows(leader, 3)
        batch = build_batch(leader, cursor=1, epoch=4)
        assert batch["tenant"] == "t"
        assert batch["epoch"] == 4
        assert batch["cursor"] == 1
        assert batch["cursor_valid"] is True
        assert batch["last_seq"] == 3
        assert [r["seq"] for r in batch["records"]] == [2, 3]
        assert batch["table_version"] == leader.table_version
        assert batch["state_token"] == leader.state_token

    def test_limit_caps_the_batch(self, leader):
        put_rows(leader, 5)
        batch = build_batch(leader, cursor=0, limit=2)
        assert [r["seq"] for r in batch["records"]] == [1, 2]
        assert batch["last_seq"] == 5  # follower sees it is still behind

    def test_compacted_cursor_is_flagged_invalid(self, leader):
        put_rows(leader, 3)
        leader.log.truncate_through(2)
        batch = build_batch(leader, cursor=0)
        assert batch["cursor_valid"] is False
        assert batch["records"] == []
        assert batch["first_live_seq"] == 3

    def test_negative_cursor_rejected(self, leader):
        with pytest.raises(ValueError, match="cursor"):
            build_batch(leader, cursor=-1)


class TestShipFaults:
    def test_drop_loses_the_head(self, leader):
        put_rows(leader, 3)
        with faults.plan({"repl.ship.drop": {"once": True}}):
            batch = build_batch(leader, cursor=0)
        assert [r["seq"] for r in batch["records"]] == [2, 3]
        # the log itself is untouched: the next fetch ships everything
        assert [r["seq"] for r in build_batch(leader, cursor=0)["records"]] == [
            1, 2, 3
        ]

    def test_dup_redelivers_the_head(self, leader):
        put_rows(leader, 3)
        with faults.plan({"repl.ship.dup": {"once": True}}):
            batch = build_batch(leader, cursor=0)
        assert [r["seq"] for r in batch["records"]] == [1, 2, 3, 1]

    def test_reorder_reverses_the_batch(self, leader):
        put_rows(leader, 3)
        with faults.plan({"repl.ship.reorder": {"once": True}}):
            batch = build_batch(leader, cursor=0)
        assert [r["seq"] for r in batch["records"]] == [3, 2, 1]


class TestReplicaApplier:
    def test_clean_batch_applies_in_order(self, leader, follower):
        put_rows(leader, 3)
        result = ReplicaApplier(follower).apply_batch(build_batch(leader, 0))
        assert result == {
            "applied": 3, "duplicates": 0, "gap": False, "last_seq": 3,
        }
        assert follower.table_version == leader.table_version
        assert follower.state_token == leader.state_token

    def test_duplicates_absorbed_and_reorder_sorted(self, leader, follower):
        put_rows(leader, 3)
        batch = build_batch(leader, 0)
        batch["records"] = list(reversed(batch["records"])) + batch["records"][:1]
        result = ReplicaApplier(follower).apply_batch(batch)
        assert result["applied"] == 3
        assert result["duplicates"] == 1
        assert not result["gap"]
        assert follower.state_token == leader.state_token

    def test_gap_stops_the_batch_without_applying(self, leader, follower):
        put_rows(leader, 3)
        batch = build_batch(leader, 0)
        batch["records"] = batch["records"][1:]  # head lost in flight
        result = ReplicaApplier(follower).apply_batch(batch)
        assert result["applied"] == 0
        assert result["gap"] is True
        assert follower.log.last_seq == 0  # nothing damaged was applied


class TestApplyReplicated:
    def test_duplicate_is_acknowledged_without_reapplying(self, follower):
        follower.apply_replicated(1, {"insert": [{"a": 0, "b": 1}]})
        rows = len(follower.lewis.data)
        response = follower.apply_replicated(1, {"insert": [{"a": 0, "b": 1}]})
        assert response["duplicate"] is True
        assert len(follower.lewis.data) == rows
        assert follower.log.last_seq == 1

    def test_gap_raises_instead_of_skipping_ahead(self, follower):
        with pytest.raises(StoreError, match="replication gap"):
            follower.apply_replicated(5, {"insert": [{"a": 0, "b": 1}]})
        assert follower.log.last_seq == 0

    def test_injected_crash_fires_before_the_append(self, follower):
        with faults.plan({"repl.apply.crash": {"once": True}}):
            with pytest.raises(StoreError, match="injected replication apply"):
                follower.apply_replicated(1, {"insert": [{"a": 0, "b": 1}]})
            assert follower.log.last_seq == 0  # crash preceded durability
            # the retry (same seq, fault spent) succeeds cleanly
            response = follower.apply_replicated(
                1, {"insert": [{"a": 0, "b": 1}]}
            )
        assert response["applied"] is True
        assert follower.log.last_seq == 1


class TestEpochStore:
    def test_note_seen_ratchets_durably(self, tmp_path):
        epochs = EpochStore(tmp_path)
        assert epochs.max_seen() == 0
        assert epochs.note_seen(3) is True
        assert epochs.note_seen(3) is True  # at the floor: fine
        assert epochs.note_seen(2) is False  # below: fenced
        reopened = EpochStore(tmp_path)
        assert reopened.max_seen() == 3
        assert reopened.note_seen(2) is False  # fencing survives restart

    def test_advance_is_monotone_past_everything_seen(self, tmp_path):
        epochs = EpochStore(tmp_path)
        epochs.note_seen(7)
        assert epochs.advance("failover") == 8
        assert epochs.current() == 8
        assert EpochStore(tmp_path).current() == 8
        assert epochs.history()[-1]["reason"] == "failover"

    def test_crash_during_advance_leaves_old_epoch(self, tmp_path):
        epochs = EpochStore(tmp_path)
        epochs.note_seen(2)
        with faults.plan({"repl.promote": {"once": True}}):
            with pytest.raises(StoreError, match="promotion"):
                epochs.advance("doomed")
        assert epochs.current() == 0  # never led
        assert EpochStore(tmp_path).current() == 0
        assert epochs.advance("retry") == 3  # the retry still fences 2


class TestManagerFencing:
    def test_stale_epoch_batch_is_refused(self, tmp_path):
        registry = Registry(tmp_path / "store")
        try:
            registry.add("t", make_storable_lewis())
            manager = ReplicationManager(registry)
            manager.epochs.note_seen(5)
            stale = {"tenant": "t", "epoch": 4, "records": [], "last_seq": 0}
            with pytest.raises(FencedError, match="fencing floor 5"):
                manager.ingest_batch("t", stale)
            fresh = {"tenant": "t", "epoch": 5, "records": [], "last_seq": 0}
            assert manager.ingest_batch("t", fresh)["applied"] == 0
        finally:
            registry.close()
