"""Parallel, warm-started and anytime recourse solving.

Property suite for the throughput PR: the parametric engine must agree
with the scipy/HiGHS MILP oracle, parallel batches must be bit-identical
to serial ones, warm starts must never change answers, and anytime
mode's certified optimality gap must genuinely upper-bound the distance
to the exact optimum.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from scipy.optimize import linprog

from repro.core.recourse import Recourse, RecourseAction, RecourseSolver
from repro.core.scores import ScoreEstimator
from repro.data.table import Table
from repro.opt.branch_and_bound import BranchAndBoundSolver, solve_binary_program
from repro.opt.integer_program import IntegerProgram
from repro.opt.parametric import (
    FEASIBILITY_TOL,
    SignatureSkeleton,
    greedy_cover,
)
from repro.utils.exceptions import RecourseInfeasibleError


def make_population(seed: int = 0, n: int = 400) -> Table:
    rng = np.random.default_rng(seed)
    return Table.from_codes(
        {
            "skill": rng.integers(0, 4, n),
            "hours": rng.integers(0, 4, n),
            "degree": rng.integers(0, 3, n),
            "region": rng.integers(0, 2, n),
        },
        domains={
            "skill": [0, 1, 2, 3],
            "hours": [0, 1, 2, 3],
            "degree": [0, 1, 2],
            "region": [0, 1],
        },
    )


def score_model(features: Table) -> np.ndarray:
    z = (
        features.codes("skill")
        + features.codes("hours")
        + 2 * features.codes("degree")
    )
    return z >= 5


def make_estimator(seed: int = 0, n: int = 400) -> ScoreEstimator:
    table = make_population(seed, n)
    return ScoreEstimator(table, score_model(table))


def negative_rows(estimator: ScoreEstimator, limit: int | None = None) -> list[dict]:
    rows = [
        estimator.table.row_codes(i)
        for i in range(estimator.table.n_rows)
        if not estimator._positive[i]
    ]
    return rows if limit is None else rows[:limit]


def random_skeleton(rng: np.random.Generator) -> SignatureSkeleton:
    n_attrs = int(rng.integers(2, 5))
    codes, costs, gains = [], [], []
    current = []
    for _ in range(n_attrs):
        k = int(rng.integers(0, 4))
        codes.append(list(range(1, k + 1)))
        costs.append([float(c) for c in rng.uniform(0.1, 3.0, k)])
        gains.append([float(g) for g in rng.normal(0.5, 1.0, k)])
        current.append(0)
    return SignatureSkeleton(
        attributes=[f"a{i}" for i in range(n_attrs)],
        current=current,
        codes=codes,
        costs=costs,
        gains=gains,
    )


def lp_value_via_linprog(skeleton: SignatureSkeleton, needed: float) -> float | None:
    """LP relaxation objective via scipy, or None when infeasible."""
    c, g = [], []
    blocks = []
    offset = 0
    for a in range(len(skeleton.attributes)):
        k = len(skeleton.codes[a])
        c.extend(skeleton.costs[a])
        g.extend(skeleton.gains[a])
        blocks.append((offset, offset + k))
        offset += k
    n = offset
    if n == 0:
        return 0.0 if needed <= FEASIBILITY_TOL else None
    A_ub = []
    b_ub = []
    for lo, hi in blocks:
        row = np.zeros(n)
        row[lo:hi] = 1.0
        A_ub.append(row)
        b_ub.append(1.0)
    A_ub.append(-np.asarray(g))
    b_ub.append(-needed)
    result = linprog(
        c, A_ub=np.asarray(A_ub), b_ub=np.asarray(b_ub), bounds=[(0, 1)] * n,
        method="highs",
    )
    if not result.success:
        return None
    return float(result.fun)


class TestEngineParity:
    """The parametric engine agrees with the scipy/HiGHS MILP oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("alpha", [0.5, 0.7])
    def test_objectives_match_milp(self, seed, alpha):
        estimator = make_estimator(seed=seed)
        actionable = ["skill", "hours", "degree"]
        fast = RecourseSolver(estimator, actionable, engine="parametric")
        oracle = RecourseSolver(estimator, actionable, engine="milp")
        checked = 0
        for row in negative_rows(estimator, limit=60):
            try:
                a = fast.solve(row, alpha=alpha)
            except RecourseInfeasibleError:
                with pytest.raises(RecourseInfeasibleError):
                    oracle.solve(row, alpha=alpha)
                continue
            b = oracle.solve(row, alpha=alpha)
            assert a.total_cost == pytest.approx(b.total_cost, abs=1e-9)
            assert a.n_constraints == b.n_constraints
            assert a.n_variables == b.n_variables
            checked += 1
        assert checked > 10

    def test_custom_costs_match_milp(self):
        estimator = make_estimator(seed=3)

        def lopsided(attribute: str, current: int, new: int) -> float:
            return 2.5 if attribute == "skill" else 0.5 * abs(new - current)

        fast = RecourseSolver(
            estimator, ["skill", "hours"], cost_fn=lopsided, engine="parametric"
        )
        oracle = RecourseSolver(
            estimator, ["skill", "hours"], cost_fn=lopsided, engine="milp"
        )
        checked = 0
        for row in negative_rows(estimator, limit=40):
            try:
                a = fast.solve(row, alpha=0.6)
            except RecourseInfeasibleError:
                continue
            b = oracle.solve(row, alpha=0.6)
            assert a.total_cost == pytest.approx(b.total_cost, abs=1e-9)
            checked += 1
        assert checked > 5


class TestParallelBitIdentity:
    """workers/chunking/warm starts change wall-clock, never answers."""

    def _batches(self, monkeypatch, workers, mp_context=None):
        # Small chunks force several payloads so the pool actually
        # partitions the work; parallel_threshold=1 lets a small cohort
        # take the pool path at all.
        monkeypatch.setattr(
            "repro.core.recourse.adaptive_chunk_size", lambda *a, **k: 5
        )
        estimator = make_estimator(seed=4)
        solver = RecourseSolver(estimator, ["skill", "hours", "degree"])
        solver.parallel_threshold = 1
        rows = negative_rows(estimator, limit=80)
        out = solver.solve_batch(
            rows, alpha=0.6, on_infeasible="none", workers=workers,
            mp_context=mp_context,
        )
        return solver, rows, out

    def test_serial_and_parallel_agree_exactly(self, monkeypatch):
        serial_solver, rows, serial = self._batches(monkeypatch, workers=None)
        parallel_solver, _, parallel = self._batches(monkeypatch, workers=2)
        assert parallel_solver.solution_memo_stats()["parallel_batches"] == 1
        assert serial_solver.solution_memo_stats()["parallel_batches"] == 0
        assert len(serial) == len(parallel) == len(rows)
        for a, b in zip(serial, parallel):
            if a is None:
                assert b is None
                continue
            # Bit identity, not approximate agreement.
            assert a.as_dict() == b.as_dict()
            assert a.total_cost == b.total_cost
            assert a.estimated_sufficiency == b.estimated_sufficiency
            assert a.estimated_probability == b.estimated_probability
            assert a.threshold == b.threshold

    def test_spawn_context_agrees_exactly(self, monkeypatch):
        _, _, serial = self._batches(monkeypatch, workers=None)
        _, _, spawned = self._batches(monkeypatch, workers=2, mp_context="spawn")
        for a, b in zip(serial, spawned):
            if a is None:
                assert b is None
                continue
            assert a.as_dict() == b.as_dict()
            assert a.total_cost == b.total_cost

    def test_scalar_and_batch_agree_exactly(self):
        estimator = make_estimator(seed=5)
        batch_solver = RecourseSolver(estimator, ["skill", "hours"])
        scalar_solver = RecourseSolver(estimator, ["skill", "hours"])
        rows = negative_rows(estimator, limit=50)
        batch = batch_solver.solve_batch(rows, alpha=0.6, on_infeasible="none")
        for row, b in zip(rows, batch):
            if b is None:
                with pytest.raises(RecourseInfeasibleError):
                    scalar_solver.solve(row, alpha=0.6)
                continue
            s = scalar_solver.solve(row, alpha=0.6)
            # Warm-start donors exist only in the batch path; the seeded
            # search must still return the scalar path's canonical answer.
            # (Scalar scoring uses score_codes, batch uses the matrix
            # pass — identical to 1e-12, not to the last ulp.)
            assert s.as_dict() == b.as_dict()
            assert s.total_cost == b.total_cost
            assert s.threshold == pytest.approx(b.threshold, abs=1e-12)

    def test_small_batches_stay_inline(self):
        estimator = make_estimator(seed=6)
        solver = RecourseSolver(estimator, ["skill", "hours"])
        rows = negative_rows(estimator, limit=20)
        solver.solve_batch(rows, alpha=0.6, on_infeasible="none", workers=4)
        # Below parallel_threshold no pool is spawned even with workers>1.
        assert solver.solution_memo_stats()["parallel_batches"] == 0

    def test_negative_workers_rejected(self):
        estimator = make_estimator(seed=6)
        solver = RecourseSolver(estimator, ["skill", "hours"])
        with pytest.raises(ValueError, match="workers"):
            solver.solve_batch([estimator.table.row_codes(0)], workers=-1)


class TestAnytimeMode:
    """Greedy anytime answers carry a certified optimality gap."""

    @pytest.mark.parametrize("seed", [0, 2, 7])
    def test_gap_upper_bounds_exact_difference(self, seed):
        estimator = make_estimator(seed=seed)
        actionable = ["skill", "hours", "degree"]
        exact = RecourseSolver(estimator, actionable)
        anytime = RecourseSolver(estimator, actionable)
        rows = negative_rows(estimator, limit=60)
        exact_out = exact.solve_batch(rows, alpha=0.6, on_infeasible="none")
        anytime_out = anytime.solve_batch(
            rows, alpha=0.6, on_infeasible="none", mode="anytime"
        )
        checked = 0
        for e, a in zip(exact_out, anytime_out):
            if a is None or e is None:
                continue
            assert a.mode == "anytime"
            assert a.optimality_gap >= 0.0
            # The certificate: anytime cost can exceed the exact optimum
            # by at most the reported gap.
            assert a.total_cost - e.total_cost <= a.optimality_gap + 1e-9
            # And the anytime answer is genuinely feasible.
            assert a.estimated_sufficiency >= 0.6 - 1e-9
            checked += 1
        assert checked > 10

    def test_exact_mode_reports_zero_gap(self):
        estimator = make_estimator(seed=1)
        solver = RecourseSolver(estimator, ["skill", "hours"])
        for row in negative_rows(estimator, limit=15):
            try:
                recourse = solver.solve(row, alpha=0.6)
            except RecourseInfeasibleError:
                continue
            assert recourse.optimality_gap == 0.0
            assert recourse.mode == "exact"

    def test_modes_occupy_distinct_memo_keys(self):
        estimator = make_estimator(seed=2)
        solver = RecourseSolver(estimator, ["skill", "hours"])
        rows = negative_rows(estimator, limit=25)
        solver.solve_batch(rows, alpha=0.6, on_infeasible="none")
        exact_only = solver.solution_memo_stats()["solved_signatures"]
        solver.solve_batch(rows, alpha=0.6, on_infeasible="none", mode="anytime")
        assert solver.solution_memo_stats()["solved_signatures"] == 2 * exact_only


class TestFrozenRecourse:
    def test_recourse_is_immutable(self):
        recourse = Recourse(
            actions=[
                RecourseAction("skill", 0, 2, 2.0),
            ],
            total_cost=2.0,
            estimated_sufficiency=0.9,
            estimated_probability=0.8,
            threshold=0.75,
            n_constraints=2,
            n_variables=3,
        )
        assert isinstance(recourse.actions, tuple)
        with pytest.raises(dataclasses.FrozenInstanceError):
            recourse.total_cost = 0.0
        with pytest.raises(dataclasses.FrozenInstanceError):
            recourse.actions = ()

    def test_defaults_are_exact_with_zero_gap(self):
        recourse = Recourse(
            actions=(),
            total_cost=0.0,
            estimated_sufficiency=1.0,
            estimated_probability=0.9,
            threshold=0.9,
            n_constraints=0,
            n_variables=0,
        )
        assert recourse.mode == "exact"
        assert recourse.optimality_gap == 0.0


class TestBranchAndBoundIncumbent:
    def _program(self) -> IntegerProgram:
        program = IntegerProgram()
        program.add_variable("x1", cost=1.0)
        program.add_variable("x2", cost=2.0)
        program.add_variable("x3", cost=3.0)
        program.add_le_constraint({"x1": 1.0, "x2": 1.0}, 1.0)
        program.add_ge_constraint({"x1": 1.0, "x2": 2.0, "x3": 2.0}, 2.0)
        return program

    def test_incumbent_matches_cold_objective(self):
        program = self._program()
        cold = BranchAndBoundSolver().solve(program)
        warm = BranchAndBoundSolver().solve(program, incumbent=cold.values)
        assert warm.objective == pytest.approx(cold.objective, abs=1e-12)
        vector = BranchAndBoundSolver().solve(
            program, incumbent=np.array([0.0, 1.0, 0.0])
        )
        assert vector.objective == pytest.approx(cold.objective, abs=1e-12)

    def test_infeasible_incumbent_is_ignored(self):
        program = self._program()
        # x1 = x2 = 1 violates the exclusivity row; the solver must drop
        # it and still find the true optimum.
        warm = BranchAndBoundSolver().solve(
            program, incumbent={"x1": 1, "x2": 1, "x3": 0}
        )
        cold = BranchAndBoundSolver().solve(program)
        assert warm.objective == pytest.approx(cold.objective, abs=1e-12)

    def test_malformed_incumbent_is_ignored(self):
        program = self._program()
        warm = BranchAndBoundSolver().solve(program, incumbent={"nope": 1})
        cold = BranchAndBoundSolver().solve(program)
        assert warm.objective == pytest.approx(cold.objective, abs=1e-12)


class TestMilpOptionPlumbing:
    def _capture_milp(self, monkeypatch, captured):
        import scipy.optimize

        real_milp = scipy.optimize.milp

        def spy(c, **kwargs):
            # Copy: scipy pops recognised keys out of the options dict.
            captured.append(dict(kwargs.get("options", {})))
            return real_milp(c, **kwargs)

        monkeypatch.setattr(scipy.optimize, "milp", spy)

    def test_budgets_reach_highs_options(self, monkeypatch):
        captured: list[dict] = []
        self._capture_milp(monkeypatch, captured)
        program = IntegerProgram()
        program.add_variable("x", cost=1.0)
        program.add_ge_constraint({"x": 1.0}, 1.0)
        solution = solve_binary_program(
            program, max_nodes=123, time_limit=4.5, mip_rel_gap=0.01
        )
        assert solution.objective == pytest.approx(1.0)
        assert captured == [
            {"node_limit": 123, "time_limit": 4.5, "mip_rel_gap": 0.01}
        ]

    def test_exhausted_budget_raises(self, monkeypatch):
        import scipy.optimize

        class FakeResult:
            status = 1
            success = False
            x = None
            fun = None

        monkeypatch.setattr(scipy.optimize, "milp", lambda c, **k: FakeResult())
        program = IntegerProgram()
        program.add_variable("x", cost=1.0)
        program.add_ge_constraint({"x": 1.0}, 1.0)
        with pytest.raises(RecourseInfeasibleError, match="budget exhausted"):
            solve_binary_program(program, max_nodes=1)


class TestParametricBound:
    """The cached dual bound equals the true LP relaxation value."""

    @pytest.mark.parametrize("seed", range(8))
    def test_lp_bound_matches_linprog(self, seed):
        rng = np.random.default_rng(seed)
        skeleton = random_skeleton(rng)
        max_gain = float(skeleton.suffix_gain[0])
        for fraction in (0.15, 0.45, 0.85):
            needed = fraction * max_gain
            if needed <= FEASIBILITY_TOL:
                continue
            bound = skeleton.lp_bound(needed)
            reference = lp_value_via_linprog(skeleton, needed)
            assert reference is not None
            assert bound == pytest.approx(reference, abs=1e-7)

    @pytest.mark.parametrize("seed", range(8))
    def test_infeasibility_is_exact(self, seed):
        rng = np.random.default_rng(seed)
        skeleton = random_skeleton(rng)
        needed = float(skeleton.suffix_gain[0]) + 0.5
        assert skeleton.lp_bound(needed) == np.inf
        assert lp_value_via_linprog(skeleton, needed) is None
        assert greedy_cover(skeleton, needed) is None

    @pytest.mark.parametrize("seed", range(8))
    def test_greedy_cover_is_feasible(self, seed):
        rng = np.random.default_rng(seed)
        skeleton = random_skeleton(rng)
        max_gain = float(skeleton.suffix_gain[0])
        for fraction in (0.2, 0.6, 0.95):
            needed = fraction * max_gain
            if needed <= FEASIBILITY_TOL:
                continue
            covered = greedy_cover(skeleton, needed)
            assert covered is not None
            selection, cost = covered
            gain = sum(
                float(skeleton.opt_gains[r][j])
                for r, j in enumerate(selection)
                if j >= 0
            )
            assert gain >= needed - FEASIBILITY_TOL
            assert cost == pytest.approx(
                sum(
                    float(skeleton.opt_costs[r][j])
                    for r, j in enumerate(selection)
                    if j >= 0
                ),
                abs=1e-12,
            )
            # The greedy cost can never undercut the LP bound.
            assert cost >= skeleton.lp_bound(needed) - 1e-9
