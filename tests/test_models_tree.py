"""Unit tests for CART trees."""

import numpy as np
import pytest

from repro.models.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.utils.exceptions import NotFittedError


class TestDecisionTreeClassifier:
    def test_fits_simple_threshold_rule(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0], [4.0], [5.0]])
        y = np.array([0, 0, 0, 1, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0

    def test_predict_proba_rows_sum_to_one(self, linear_data):
        X, y, _ = linear_data
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        proba = tree.predict_proba(X[:20])
        assert proba.shape == (20, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_classes_preserved_with_string_labels(self):
        X = np.array([[0.0], [5.0], [0.1], [4.9]])
        y = np.array(["no", "yes", "no", "yes"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) == {"no", "yes"}

    def test_max_depth_limits_overfitting(self, linear_data):
        X, y, _ = linear_data
        stump = DecisionTreeClassifier(max_depth=1).fit(X, y)
        deep = DecisionTreeClassifier(max_depth=None).fit(X, y)
        assert deep.score(X, y) >= stump.score(X, y)
        # A depth-1 tree has exactly one split (2 leaves).
        assert stump.root_.feature >= 0
        assert stump.root_.left.feature == -1
        assert stump.root_.right.feature == -1

    def test_min_samples_leaf_enforced(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.array([0] * 9 + [1])
        tree = DecisionTreeClassifier(min_samples_leaf=3).fit(X, y)

        def leaf_sizes(node):
            if node.feature < 0:
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert all(s >= 3 for s in leaf_sizes(tree.root_))

    def test_pure_node_stops_splitting(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(X, y)  # single class rejected

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_feature_importances_sum_to_one(self, linear_data):
        X, y, _ = linear_data
        tree = DecisionTreeClassifier(max_depth=5).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_irrelevant_feature_gets_low_importance(self):
        rng = np.random.default_rng(0)
        X = np.column_stack([rng.normal(size=400), rng.normal(size=400)])
        y = (X[:, 0] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        assert tree.feature_importances_[0] > 0.9

    def test_entropy_criterion(self, linear_data):
        X, y, _ = linear_data
        tree = DecisionTreeClassifier(max_depth=4, criterion="entropy").fit(X, y)
        assert tree.score(X, y) > 0.8

    def test_unknown_criterion(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0, 1])
        with pytest.raises(ValueError):
            DecisionTreeClassifier(criterion="bogus").fit(X, y)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((3, 1)), np.array([0, 1]))

    def test_multiclass(self):
        X = np.array([[0.0], [1.0], [2.0], [0.1], [1.1], [2.1]])
        y = np.array([0, 1, 2, 0, 1, 2])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.score(X, y) == 1.0
        assert tree.predict_proba(X).shape == (6, 3)

    def test_apply_returns_leaf_ids(self, linear_data):
        X, y, _ = linear_data
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        leaves = tree.apply(X)
        assert leaves.min() >= 0
        # Rows in the same leaf get identical probability vectors.
        proba = tree.predict_proba(X)
        for leaf in np.unique(leaves):
            block = proba[leaves == leaf]
            assert np.allclose(block, block[0])


class TestDecisionTreeRegressor:
    def test_fits_step_function(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        y = (X[:, 0] >= 10).astype(float) * 5.0
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_constant_target_single_leaf(self):
        X = np.arange(5, dtype=float).reshape(-1, 1)
        y = np.full(5, 3.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.n_leaves_ == 1
        assert np.allclose(tree.predict(X), 3.0)

    def test_depth_improves_fit(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(0, 1, size=(300, 1))
        y = np.sin(6 * X[:, 0])
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert deep.score(X, y) > shallow.score(X, y)

    def test_apply_consistent_with_predictions(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 2))
        y = X[:, 0] * 2 + rng.normal(size=100) * 0.1
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        leaves = tree.apply(X)
        preds = tree.predict(X)
        for leaf in np.unique(leaves):
            block = preds[leaves == leaf]
            assert np.allclose(block, block[0])

    def test_n_leaves_counts_apply_range(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 3))
        y = X @ np.array([1.0, -1.0, 0.5])
        tree = DecisionTreeRegressor(max_depth=4).fit(X, y)
        assert tree.apply(X).max() < tree.n_leaves_

    def test_score_r2_bounds(self):
        X = np.arange(50, dtype=float).reshape(-1, 1)
        y = X[:, 0] * 2.0
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert 0.9 < tree.score(X, y) <= 1.0
