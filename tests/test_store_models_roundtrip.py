"""Every supported model class round-trips through the ArtifactStore.

:mod:`repro.models.serialize` is exercised here through the *store*: the
model is content-addressed as a JSON blob, read back in a "new process",
and must predict identically — both bare estimators and fitted
``TableModel`` pipelines end-to-end through snapshot/restore.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.models.boosting import GradientBoostingClassifier, GradientBoostingRegressor
from repro.models.forest import RandomForestClassifier, RandomForestRegressor
from repro.models.linear import LinearRegression, LogisticRegression
from repro.models.neural import NeuralNetworkClassifier
from repro.models.pipeline import MODEL_KINDS, fit_table_model
from repro.models.serialize import model_from_dict, model_to_dict
from repro.models.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.store import (
    ArtifactStore,
    create_tenant,
    restore_session,
)

ESTIMATORS = [
    pytest.param(lambda: DecisionTreeClassifier(max_depth=4), True, id="tree"),
    pytest.param(lambda: DecisionTreeRegressor(max_depth=4), False, id="tree-reg"),
    pytest.param(lambda: RandomForestClassifier(n_estimators=5, max_depth=4, seed=0), True, id="forest"),
    pytest.param(lambda: GradientBoostingClassifier(n_estimators=6, max_depth=2, seed=0), True, id="boosting"),
    pytest.param(lambda: LogisticRegression(), True, id="logistic"),
    pytest.param(lambda: NeuralNetworkClassifier(hidden_sizes=(8,), epochs=5, seed=0), True, id="neural"),
    pytest.param(lambda: RandomForestRegressor(n_estimators=5, max_depth=4, seed=0), False, id="forest-reg"),
    pytest.param(lambda: GradientBoostingRegressor(n_estimators=6, max_depth=2, seed=0), False, id="boosting-reg"),
    pytest.param(lambda: LinearRegression(), False, id="linear"),
]


@pytest.fixture(scope="module")
def arrays():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(250, 4))
    y_clf = (X[:, 0] + 0.5 * X[:, 1] > 0).astype(int)
    y_reg = X @ np.array([1.0, -2.0, 0.5, 0.0]) + 0.1 * rng.normal(size=250)
    return X, y_clf, y_reg


class TestEstimatorsThroughStore:
    @pytest.mark.parametrize("factory, classifier", ESTIMATORS)
    def test_blob_round_trip_preserves_predictions(
        self, tmp_path, arrays, factory, classifier
    ):
        X, y_clf, y_reg = arrays
        model = factory().fit(X, y_clf if classifier else y_reg)
        store = ArtifactStore(tmp_path / "store")
        digest = store.put_json(model_to_dict(model))
        restored = model_from_dict(store.get_json(digest))
        if classifier:
            assert np.array_equal(restored.predict(X), model.predict(X))
            assert np.allclose(restored.predict_proba(X), model.predict_proba(X))
        else:
            assert np.allclose(restored.predict(X), model.predict(X))
        # content addressing: re-serialising yields the same blob
        assert store.put_json(model_to_dict(restored)) == digest


def make_labeled_table(n=200, seed=0) -> Table:
    rng = np.random.default_rng(seed)
    rows = {
        "a": rng.integers(0, 3, n).tolist(),
        "b": rng.integers(0, 4, n).tolist(),
        "c": rng.integers(0, 2, n).tolist(),
    }
    rows["y"] = [
        int(a + b + c >= 3) for a, b, c in zip(rows["a"], rows["b"], rows["c"])
    ]
    return Table.from_dict(
        rows,
        domains={"a": [0, 1, 2], "b": [0, 1, 2, 3], "c": [0, 1], "y": [0, 1]},
    )


class TestTableModelsThroughSnapshot:
    #: decision-tree pipelines are covered via the forest (a 1-tree
    #: forest is a tree); every MODEL_KINDS entry appears here.
    KINDS = sorted(MODEL_KINDS)

    @pytest.mark.parametrize("kind", KINDS)
    def test_snapshot_restore_serves_identical_predictions(self, tmp_path, kind):
        table = make_labeled_table()
        regression = kind.endswith("_regressor")
        params = {"seed": 0}
        if "forest" in kind or "xgboost" in kind:
            params.update(n_estimators=4, max_depth=4)
        model = fit_table_model(kind, table, ["a", "b", "c"], "y", **params)
        lewis = Lewis(
            model,
            data=table.select(["a", "b", "c"]),
            attributes=["a", "b", "c"],
            positive_outcome=None if regression else 1,
            threshold=0.5 if regression else None,
            infer_orderings=False,
        )
        store = ArtifactStore(tmp_path / "store")
        session = create_tenant(store, "t", lewis)
        answer = session.explain_global(max_pairs_per_attribute=4)
        session.close()

        restored = restore_session(store, "t")
        assert np.array_equal(restored.lewis.positive, lewis.positive)
        again = restored.explain_global(max_pairs_per_attribute=4)
        assert again["result"] == answer["result"]
        # inserted rows are predicted by the *restored* black box
        restored.update({"insert": [{"a": 2, "b": 3, "c": 1}]})
        assert bool(restored.lewis.positive[-1]) == bool(
            lewis.predict_positive(
                restored.lewis.data.take(np.array([len(restored.lewis.data) - 1]))
            )[0]
        )
        restored.close()
