"""Failure-injection and degenerate-input tests.

Production code meets broken inputs: empty sub-populations, constant
outcomes, single-valued attributes, all-positive populations, domains the
model never saw. Each scenario must fail loudly with the library's own
exception types — or degrade to a defined value — never crash with a
bare numpy error.
"""

import numpy as np
import pytest

from repro.causal.graph import CausalDiagram
from repro.core.recourse import RecourseSolver
from repro.core.scores import ScoreEstimator
from repro.data.table import Column, Table
from repro.estimation.probability import FrequencyEstimator
from repro.utils.exceptions import EstimationError, RecourseInfeasibleError


def _two_column_table(n=200, seed=0):
    rng = np.random.default_rng(seed)
    return Table(
        [
            Column.from_codes("x", rng.integers(0, 3, n), (0, 1, 2)),
            Column.from_codes("z", rng.integers(0, 2, n), (0, 1)),
        ]
    )


class TestDegenerateOutcomes:
    def test_all_positive_population(self):
        table = _two_column_table()
        est = ScoreEstimator(table, np.ones(len(table), dtype=bool))
        # SUF denominator P(o'|x') = 0 -> defined fallback of 0.
        assert est.sufficiency({"x": 2}, {"x": 0}) == 0.0
        assert est.necessity_sufficiency({"x": 2}, {"x": 0}) == 0.0

    def test_all_negative_population(self):
        table = _two_column_table()
        est = ScoreEstimator(table, np.zeros(len(table), dtype=bool))
        assert est.necessity({"x": 2}, {"x": 0}) == 0.0

    def test_local_scores_with_constant_outcome(self):
        table = _two_column_table()
        est = ScoreEstimator(table, np.ones(len(table), dtype=bool))
        triple = est.local_scores("x", 2, 0, {"z": 1})
        assert triple.sufficiency == 0.0
        assert triple.necessity_sufficiency == 0.0


class TestEmptySupport:
    def test_unseen_value_combination(self):
        """Conditioning on a combination absent from the data."""
        codes_x = np.array([0] * 50 + [1] * 50)
        codes_z = np.array([0] * 50 + [0] * 50)  # z never equals 1
        table = Table(
            [
                Column.from_codes("x", codes_x, (0, 1)),
                Column.from_codes("z", codes_z, (0, 1)),
            ]
        )
        freq = FrequencyEstimator(table)
        with pytest.raises(EstimationError):
            freq.probability({"x": 1}, {"z": 1})
        assert freq.probability_or_default({"x": 1}, {"z": 1}, default=0.5) == 0.5

    def test_context_without_rows_gives_zero_scores(self):
        table = _two_column_table()
        positive = table.codes("x") >= 1
        est = ScoreEstimator(table, positive)
        # Unsupported context degrades to 0, not a crash.
        table2 = table.with_column(
            Column.from_codes("w", np.zeros(len(table), dtype=np.int64), (0, 1))
        )
        est2 = ScoreEstimator(table2, positive)
        assert est2.sufficiency({"x": 2}, {"x": 0}, {"w": 1}) == 0.0


class TestSingleValuedAttributes:
    def test_cardinality_one_attribute_gets_zero_scores(self):
        n = 100
        table = Table(
            [
                Column.from_codes("x", np.random.default_rng(0).integers(0, 2, n), (0, 1)),
                Column.from_codes("const", np.zeros(n, dtype=np.int64), ("only",)),
            ]
        )
        positive = table.codes("x") == 1
        est = ScoreEstimator(table, positive)
        from repro.core.explanations import build_global_explanation

        exp = build_global_explanation(est, ["x", "const"])
        assert exp.score_of("const").necessity_sufficiency == 0.0

    def test_recourse_with_constant_actionable_infeasible(self):
        n = 400
        rng = np.random.default_rng(1)
        x = rng.integers(0, 2, n)
        table = Table(
            [
                Column.from_codes("x", x, (0, 1)),
                Column.from_codes("const", np.zeros(n, dtype=np.int64), ("only",)),
            ]
        )
        positive = x == 1
        est = ScoreEstimator(table, positive)
        solver = RecourseSolver(est, ["const"])
        with pytest.raises(RecourseInfeasibleError):
            solver.solve({"x": 0, "const": 0}, alpha=0.9)


class TestGraphEdgeCases:
    def test_estimator_with_disconnected_diagram(self):
        table = _two_column_table()
        positive = table.codes("x") >= 1
        diagram = CausalDiagram([], nodes=["x", "z"])
        est = ScoreEstimator(table, positive, diagram=diagram)
        triple = est.scores({"x": 2}, {"x": 0})
        assert 0.0 <= triple.sufficiency <= 1.0

    def test_estimator_with_partial_diagram(self):
        """Diagram covering only some attributes falls back gracefully."""
        table = _two_column_table()
        positive = table.codes("x") >= 1
        diagram = CausalDiagram([], nodes=["x"])  # z unknown to the graph
        est = ScoreEstimator(table, positive, diagram=diagram)
        # Treatment on the unknown attribute uses no adjustment.
        triple = est.scores({"z": 1}, {"z": 0})
        assert 0.0 <= triple.necessity_sufficiency <= 1.0

    def test_lewis_attribute_not_in_graph_still_scored(self):
        from repro import Lewis

        table = _two_column_table(seed=3)
        diagram = CausalDiagram([], nodes=["x"])
        lew = Lewis(
            lambda t: t.codes("x") >= 1,
            data=table,
            feature_names=["x", "z"],
            graph=diagram,
            infer_orderings=False,
        )
        exp = lew.explain_global(attributes=["x", "z"])
        assert {s.attribute for s in exp.attribute_scores} == {"x", "z"}


class TestModelInputValidation:
    def test_tree_rejects_three_dimensional_input(self):
        from repro.models.tree import DecisionTreeClassifier

        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(np.zeros((2, 2, 2)), np.array([0, 1]))

    def test_forest_single_class_rejected(self):
        from repro.models.forest import RandomForestClassifier

        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=2).fit(
                np.zeros((5, 2)), np.zeros(5)
            )

    def test_onehot_rejects_unknown_schema(self, small_table):
        from repro.data.encoding import OneHotEncoder

        enc = OneHotEncoder().fit(small_table, ["color"])
        with pytest.raises(KeyError):
            enc.transform(small_table.drop(["color"]))
