"""Unit tests for TableModel / fit_table_model and the logit models."""

import numpy as np
import pytest

from repro.data.table import Column, Table
from repro.estimation.logit import LogitModel, logit
from repro.estimation.outcome_model import OutcomeProbabilityModel
from repro.models.pipeline import MODEL_KINDS, TableModel, fit_table_model
from repro.models.forest import RandomForestClassifier


@pytest.fixture(scope="module")
def labelled_table():
    rng = np.random.default_rng(17)
    n = 2_000
    a = rng.integers(0, 3, size=n)
    b = rng.integers(0, 2, size=n)
    label = ((a + b) >= 2).astype(int)
    return Table(
        [
            Column.from_codes("a", a, (0, 1, 2)),
            Column.from_codes("b", b, (0, 1)),
            Column.from_codes("y", label, ("no", "yes")),
        ]
    )


class TestTableModel:
    def test_fit_predict_codes(self, labelled_table):
        model = fit_table_model("random_forest", labelled_table, ["a", "b"], "y", seed=0)
        codes = model.predict_codes(labelled_table)
        assert set(codes) <= {0, 1}
        assert model.accuracy(labelled_table, "y") > 0.95

    def test_predict_labels(self, labelled_table):
        model = fit_table_model("logistic", labelled_table, ["a", "b"], "y")
        labels = model.predict_labels(labelled_table)
        assert set(labels) <= {"no", "yes"}

    def test_predict_proba_shape(self, labelled_table):
        model = fit_table_model("xgboost", labelled_table, ["a", "b"], "y", seed=0)
        proba = model.predict_proba(labelled_table)
        assert proba.shape == (len(labelled_table), 2)

    def test_regressor_path(self):
        rng = np.random.default_rng(2)
        n = 800
        a = rng.integers(0, 4, size=n)
        score = a / 3.0
        bins = tuple(np.round(np.linspace(0, 1, 4), 4))
        table = Table(
            [
                Column.from_codes("a", a, (0, 1, 2, 3)),
                Column.from_codes("s", a, bins),  # label value = a/3 bin
            ]
        )
        model = fit_table_model("random_forest_regressor", table, ["a"], "s", seed=0)
        values = model.predict_value(table)
        assert np.corrcoef(values, score)[0, 1] > 0.99

    def test_classifier_guard_on_regressor_methods(self, labelled_table):
        model = fit_table_model("random_forest", labelled_table, ["a", "b"], "y", seed=0)
        with pytest.raises(TypeError):
            model.predict_value(labelled_table)

    def test_regressor_guard_on_classifier_methods(self):
        table = Table(
            [
                Column.from_codes("a", np.array([0, 1, 2, 3] * 10), (0, 1, 2, 3)),
                Column.from_codes("s", np.array([0, 1, 2, 3] * 10), (0.0, 0.3, 0.6, 1.0)),
            ]
        )
        model = fit_table_model("random_forest_regressor", table, ["a"], "s", seed=0)
        with pytest.raises(TypeError):
            model.predict_codes(table)
        with pytest.raises(TypeError):
            model.predict_proba(table)

    def test_unknown_kind(self, labelled_table):
        with pytest.raises(ValueError):
            fit_table_model("svm", labelled_table, ["a"], "y")

    def test_all_kinds_fit(self, labelled_table):
        for kind, (_ctor, is_clf, _enc) in MODEL_KINDS.items():
            if not is_clf:
                continue
            model = fit_table_model(
                kind, labelled_table, ["a", "b"], "y", seed=0,
                **({"epochs": 5} if kind == "neural_network" else {}),
            )
            assert model.accuracy(labelled_table, "y") > 0.7

    def test_invalid_encoding_rejected(self):
        with pytest.raises(ValueError):
            TableModel(RandomForestClassifier(), ["a"], encoding="weird")

    def test_outcome_domain_recorded(self, labelled_table):
        model = fit_table_model("random_forest", labelled_table, ["a", "b"], "y", seed=0)
        assert model.outcome_domain_ == ("no", "yes")


class TestLogitHelpers:
    def test_logit_clipping(self):
        assert logit(0.5) == pytest.approx(0.0)
        assert logit(1.0) < 20
        assert logit(0.0) > -20

    def test_logit_monotone(self):
        assert logit(0.9) > logit(0.6) > logit(0.3)


class TestLogitModel:
    def test_coefficient_of_reference_category_is_zero(self, labelled_table):
        positive = labelled_table.codes("y") == 1
        model = LogitModel(["a"], ["b"]).fit(labelled_table.select(["a", "b"]), positive)
        assert model.coefficient("a", 0) == 0.0

    def test_coefficients_increase_with_helpful_values(self, labelled_table):
        positive = labelled_table.codes("y") == 1
        model = LogitModel(["a"], ["b"]).fit(labelled_table.select(["a", "b"]), positive)
        assert model.coefficient("a", 2) > model.coefficient("a", 1) > 0

    def test_probability_codes_monotone(self, labelled_table):
        positive = labelled_table.codes("y") == 1
        model = LogitModel(["a"], ["b"]).fit(labelled_table.select(["a", "b"]), positive)
        probs = [model.probability_codes({"a": c, "b": 1}) for c in (0, 1, 2)]
        assert probs[0] < probs[1] < probs[2]

    def test_length_mismatch(self, labelled_table):
        with pytest.raises(ValueError):
            LogitModel(["a"]).fit(labelled_table.select(["a", "b"]), np.ones(3, bool))


class TestOutcomeProbabilityModel:
    def test_probability_tracks_frequency(self, labelled_table):
        positive = labelled_table.codes("y") == 1
        model = OutcomeProbabilityModel(["a", "b"]).fit(
            labelled_table.select(["a", "b"]), positive
        )
        # Compare against empirical rates on well-supported cells.
        for a in (0, 2):
            for b in (0, 1):
                mask = (labelled_table.codes("a") == a) & (
                    labelled_table.codes("b") == b
                )
                empirical = positive[mask].mean()
                assert model.probability({"a": a, "b": b}) == pytest.approx(
                    empirical, abs=0.1
                )

    def test_generalises_to_unseen_combo(self):
        # Only 3 of 4 combinations observed; model still answers the 4th.
        a = np.array([0, 0, 1] * 50)
        b = np.array([0, 1, 0] * 50)
        y = (a + b) >= 1
        table = Table(
            [Column.from_codes("a", a, (0, 1)), Column.from_codes("b", b, (0, 1))]
        )
        model = OutcomeProbabilityModel(["a", "b"]).fit(table, y)
        assert model.probability({"a": 1, "b": 1}) > 0.5

    def test_degenerate_all_positive(self, labelled_table):
        model = OutcomeProbabilityModel(["a"]).fit(
            labelled_table.select(["a", "b"]), np.ones(len(labelled_table), bool)
        )
        assert model.probability({"a": 0}) == 1.0

    def test_probability_table_matches_pointwise(self, labelled_table):
        positive = labelled_table.codes("y") == 1
        model = OutcomeProbabilityModel(["a", "b"]).fit(
            labelled_table.select(["a", "b"]), positive
        )
        vec = model.probability_table(labelled_table)
        for i in (0, 10, 100):
            codes = labelled_table.row_codes(i)
            assert vec[i] == pytest.approx(
                model.probability({"a": codes["a"], "b": codes["b"]})
            )
