"""Tests for Lewis configuration options and secondary API surfaces."""

import numpy as np
import pytest

from repro import Lewis, fit_table_model, load_dataset, train_test_split
from repro.core.bounds import BoundsEstimator
from repro.core.scores import ScoreEstimator


class TestLewisOptions:
    def test_explicit_attribute_subset(self, german_bundle, german_model):
        _train, test = train_test_split(german_bundle.table, seed=0)
        lew = Lewis(
            german_model,
            data=test,
            graph=german_bundle.graph,
            positive_outcome="good",
            attributes=["savings", "status"],
        )
        exp = lew.explain_global()
        assert {s.attribute for s in exp.attribute_scores} == {"savings", "status"}

    def test_infer_orderings_false_keeps_domains(self, german_bundle, german_model):
        _train, test = train_test_split(german_bundle.table, seed=0)
        lew = Lewis(
            german_model,
            data=test,
            graph=german_bundle.graph,
            positive_outcome="good",
            infer_orderings=False,
        )
        assert lew.data.domain("purpose") == test.domain("purpose")

    def test_ordering_inference_changes_unordered_domain(
        self, german_bundle, german_model
    ):
        _train, test = train_test_split(german_bundle.table, seed=0)
        with_inference = Lewis(
            german_model, data=test, graph=german_bundle.graph,
            positive_outcome="good",
        )
        # Same labels, possibly different order — and flagged ordered.
        assert set(with_inference.data.domain("purpose")) == set(
            test.domain("purpose")
        )
        assert with_inference.data.column("purpose").ordered

    def test_predictions_invariant_under_reordering(
        self, german_bundle, german_model
    ):
        """The black box must see the same inputs pre/post reordering."""
        _train, test = train_test_split(german_bundle.table, seed=0)
        plain = Lewis(
            german_model, data=test, graph=german_bundle.graph,
            positive_outcome="good", infer_orderings=False,
        )
        reordered = Lewis(
            german_model, data=test, graph=german_bundle.graph,
            positive_outcome="good", infer_orderings=True,
        )
        assert np.array_equal(plain.positive, reordered.positive)

    def test_no_graph_mode(self, german_bundle, german_model):
        _train, test = train_test_split(german_bundle.table, seed=0)
        lew = Lewis(
            german_model, data=test, graph=None, positive_outcome="good",
            attributes=german_bundle.feature_names,
        )
        exp = lew.explain_global()
        assert len(exp.attribute_scores) == len(german_bundle.feature_names)

    def test_score_intervals_surface(self, german_lewis):
        out = german_lewis.score_intervals(
            "savings", ">1000 DM", "<100 DM", n_bootstrap=8
        )
        assert set(out) == {"necessity", "sufficiency", "necessity_sufficiency"}
        for interval in out.values():
            assert 0.0 <= interval.lower <= interval.upper <= 1.0


class TestBoundsWithSets:
    @pytest.fixture(scope="class")
    def estimator(self, toy_scm):
        table = toy_scm.sample(15_000, seed=51).select(["Z", "X"])
        positive = (table.codes("X") + table.codes("Z")) >= 2
        return ScoreEstimator(
            table, positive, diagram=toy_scm.diagram.subgraph(["Z", "X"])
        )

    def test_joint_attribute_bounds_are_valid_intervals(self, estimator):
        bounds = BoundsEstimator(estimator).bounds(
            {"X": 2, "Z": 1}, {"X": 0, "Z": 0}
        )
        for lo, hi in (
            bounds.necessity,
            bounds.sufficiency,
            bounds.necessity_sufficiency,
        ):
            assert 0.0 <= lo <= hi <= 1.0

    def test_joint_point_estimate_within_joint_bounds(self, estimator):
        triple = estimator.scores({"X": 2, "Z": 1}, {"X": 0, "Z": 0})
        bounds = BoundsEstimator(estimator).bounds(
            {"X": 2, "Z": 1}, {"X": 0, "Z": 0}
        )
        assert bounds.contains(
            triple.necessity,
            triple.sufficiency,
            triple.necessity_sufficiency,
            tol=0.05,
        )


class TestRegressionThresholds:
    def test_threshold_moves_positive_rate(self):
        bundle = load_dataset("german_syn", n_rows=2_000, seed=0)
        train, test = train_test_split(bundle.table, seed=0)
        model = fit_table_model(
            "random_forest_regressor", train, bundle.feature_names,
            bundle.label, seed=0, n_estimators=8,
        )
        low = Lewis(model, data=test, graph=bundle.graph, threshold=0.3)
        high = Lewis(model, data=test, graph=bundle.graph, threshold=0.7)
        assert low.positive_rate >= high.positive_rate

    def test_xgboost_regressor_black_box(self):
        bundle = load_dataset("german_syn", n_rows=2_000, seed=0)
        train, test = train_test_split(bundle.table, seed=0)
        model = fit_table_model(
            "xgboost_regressor", train, bundle.feature_names, bundle.label,
            seed=0, n_estimators=20,
        )
        lew = Lewis(model, data=test, graph=bundle.graph, threshold=0.5)
        exp = lew.explain_global(attributes=["saving", "status"])
        assert exp.score_of("saving").necessity_sufficiency > 0.3
