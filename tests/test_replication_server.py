"""Leader/follower serving over HTTP: shipping, pins, promotion, fencing.

One module-scoped cluster (leader + follower, in-process servers on
ephemeral ports) walked through the failover lifecycle in test order:
converge, pin reads, refuse follower writes, snapshot-resync across a
compaction gap, promote with catch-up from the dead leader's disk, and
fence the deposed epoch.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from types import SimpleNamespace

import numpy as np
import pytest

from repro import fit_table_model
from repro.core.lewis import Lewis
from repro.data.table import Table
from repro.replication import FencedError
from repro.service.server import create_server
from repro.store import ArtifactStore, Registry, create_tenant

NROWS = 120


def make_lewis(seed: int = 7, n: int = NROWS) -> Lewis:
    rng = np.random.default_rng(seed)
    rows = {
        "a": rng.integers(0, 3, n).tolist(),
        "b": rng.integers(0, 3, n).tolist(),
    }
    rows["y"] = [int(a + b >= 2) for a, b in zip(rows["a"], rows["b"])]
    table = Table.from_dict(
        rows, domains={"a": [0, 1, 2], "b": [0, 1, 2], "y": [0, 1]}
    )
    model = fit_table_model("logistic", table, ["a", "b"], "y", seed=seed)
    return Lewis(
        model,
        data=table.select(["a", "b"]),
        attributes=["a", "b"],
        positive_outcome=1,
        infer_orderings=False,
    )


def http(base, path, payload=None, headers=None, method=None):
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method or ("POST" if payload is not None else "GET"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=20) as response:
            return response.status, json.loads(response.read() or b"{}"), dict(
                response.headers
            )
    except urllib.error.HTTPError as exc:
        body = exc.read()
        try:
            parsed = json.loads(body) if body else {}
        except ValueError:
            parsed = {"raw": body.decode("utf-8", "replace")}
        return exc.code, parsed, dict(exc.headers)


def start(server):
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def stop(server):
    server.shutdown()
    server.server_close()
    if server.replication is not None:
        server.replication.stop()
    server.monitors.close()


def wait_until(predicate, timeout=15.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("repl")
    leader_store = ArtifactStore(tmp / "leader")
    create_tenant(leader_store, "t", make_lewis()).close()
    leader = create_server(registry=Registry(leader_store, background=True), port=0)
    follower_registry = Registry(tmp / "follower", background=True)
    state = SimpleNamespace(
        tmp=tmp,
        leader=leader,
        leader_base=start(leader),
        leader_root=tmp / "leader",
        follower=None,
        follower_base=None,
        follower_registry=follower_registry,
        third=None,
        tokens=[],
        acked=0,
    )
    state.follower = create_server(
        registry=follower_registry, port=0, follow=state.leader_base
    )
    state.follower_base = start(state.follower)
    yield state
    for server in filter(None, (state.third, state.follower, state.leader)):
        try:
            stop(server)
        except Exception:
            pass


def leader_write(cluster, row):
    status, body, _ = http(
        cluster.leader_base, "/v1/t/update", {"insert": [row]}
    )
    assert status == 200, body
    cluster.acked += 1
    cluster.tokens.append(body["state_token"])
    return body


def follower_caught_up(cluster):
    status, body, _ = http(cluster.follower_base, "/v1/t/health")
    return status == 200 and body.get("last_seq") == cluster.acked


class TestReplicatedServing:
    def test_follower_bootstraps_and_converges_bit_identically(self, cluster):
        for i in range(4):
            leader_write(cluster, {"a": i % 3, "b": 1})
        assert wait_until(lambda: follower_caught_up(cluster))
        _, leader_health, _ = http(cluster.leader_base, "/v1/t/health?digest=1")
        _, follower_health, _ = http(
            cluster.follower_base, "/v1/t/health?digest=1"
        )
        assert follower_health["state_token"] == leader_health["state_token"]
        assert follower_health["table_version"] == leader_health["table_version"]
        assert follower_health["state_digest"] == leader_health["state_digest"]
        assert follower_health["n_rows"] == NROWS + 4

        status, repl, _ = http(cluster.follower_base, "/v1/replication")
        assert status == 200
        assert repl["role"] == "follower"
        assert repl["leader_url"] == cluster.leader_base
        assert repl["lag_records"].get("t") == 0
        assert repl["tailers"]["t"]["alive"] is True

    def test_log_endpoint_ships_records_with_geometry(self, cluster):
        status, batch, _ = http(cluster.leader_base, "/v1/t/log?cursor=0")
        assert status == 200
        assert batch["epoch"] == 0
        assert batch["cursor_valid"] is True
        assert [r["seq"] for r in batch["records"]] == list(
            range(1, cluster.acked + 1)
        )
        status, _, _ = http(cluster.leader_base, "/v1/t/log?cursor=-3")
        assert status == 400
        status, _, _ = http(cluster.leader_base, "/v1/nope/log?cursor=0")
        assert status == 404

    def test_read_your_writes_pin_honored_and_refused(self, cluster):
        assert wait_until(lambda: follower_caught_up(cluster))
        status, body, _ = http(
            cluster.follower_base,
            "/v1/t/explain/global",
            {},
            headers={"X-Repro-Min-State": cluster.tokens[-1]},
        )
        assert status == 200, body
        status, body, headers = http(
            cluster.follower_base,
            "/v1/t/explain/global",
            {},
            headers={"X-Repro-Min-State": "token-this-replica-never-saw"},
        )
        assert status == 503
        assert body["request_id"]
        assert headers.get("Retry-After")
        assert headers.get("X-Repro-State")  # what the replica does have

    def test_follower_refuses_writes_with_leader_hint(self, cluster):
        status, body, headers = http(
            cluster.follower_base, "/v1/t/update", {"insert": [{"a": 0, "b": 0}]}
        )
        assert status == 503
        assert body["leader_url"] == cluster.leader_base
        assert body["request_id"]
        assert headers.get("Retry-After")
        # reads keep working on the same replica
        status, _, _ = http(cluster.follower_base, "/v1/t/explain/global", {})
        assert status == 200

    def test_compaction_gap_forces_snapshot_resync(self, cluster):
        # take the follower offline, advance + checkpoint the leader so
        # the shipped cursor now points into compacted history
        cluster.follower.replication.stop()
        for i in range(3):
            leader_write(cluster, {"a": i % 3, "b": 2})
        status, checkpoint, _ = http(
            cluster.leader_base, "/v1/registry/t/snapshot", {}
        )
        assert status == 200, checkpoint
        leader_log = cluster.leader.registry.get("t").log
        assert leader_log.first_live_seq > cluster.acked - 3  # compacted

        cluster.follower.replication.ensure_tailer("t")
        assert wait_until(lambda: follower_caught_up(cluster))
        _, leader_health, _ = http(cluster.leader_base, "/v1/t/health?digest=1")
        _, follower_health, _ = http(
            cluster.follower_base, "/v1/t/health?digest=1"
        )
        assert follower_health["state_digest"] == leader_health["state_digest"]
        follower_log = cluster.follower_registry.get("t").log
        assert follower_log.stats()["compacted_through"] > 0  # restored, not replayed

    def test_promotion_catches_up_from_dead_leaders_disk(self, cluster):
        cluster.follower.replication.stop()
        for i in range(2):  # acked by the leader, never shipped
            leader_write(cluster, {"a": i % 3, "b": 0})
        _, leader_health, _ = http(cluster.leader_base, "/v1/t/health?digest=1")
        stop(cluster.leader)  # fail-stop: the disk survives

        status, body, _ = http(
            cluster.follower_base,
            "/v1/replication/promote",
            {"catchup_store": str(cluster.leader_root), "reason": "test failover"},
        )
        assert status == 200, body
        assert body["role"] == "leader"
        assert body["epoch"] == 1
        assert body["caught_up"]["t"] == 2  # the unshipped tail, recovered

        # zero acked-write loss: the new leader converged bit-identically
        _, promoted_health, _ = http(
            cluster.follower_base, "/v1/t/health?digest=1"
        )
        assert promoted_health["last_seq"] == cluster.acked
        assert promoted_health["state_digest"] == leader_health["state_digest"]

        # and serves writes now
        status, body, _ = http(
            cluster.follower_base, "/v1/t/update", {"insert": [{"a": 1, "b": 1}]}
        )
        assert status == 200
        cluster.acked += 1
        status, repl, _ = http(cluster.follower_base, "/v1/replication")
        assert repl["role"] == "leader"
        assert repl["epoch"]["current"] == 1

    def test_deposed_epoch_is_fenced_by_new_followers(self, cluster):
        cluster.third = create_server(
            registry=Registry(cluster.tmp / "third", background=True),
            port=0,
            follow=cluster.follower_base,  # the promoted leader
        )
        third_base = start(cluster.third)
        assert wait_until(
            lambda: http(third_base, "/v1/t/health")[1].get("last_seq")
            == cluster.acked
        )
        # the old leader's epoch-0 tail arrives late: refused durably
        stale = {"tenant": "t", "epoch": 0, "records": [], "last_seq": 0}
        with pytest.raises(FencedError, match="fencing floor 1"):
            cluster.third.replication.ingest_batch("t", stale)
        _, repl, _ = http(third_base, "/v1/replication")
        assert repl["epoch"]["max_seen"] == 1
