"""The fault-injection framework itself: plans, triggers, determinism.

The chaos suites (``test_chaos_wal_store``, ``test_chaos_pool``,
``test_chaos_service``) assert the serving stack's *containment*
contracts under injected failure; this file asserts the injection
machinery those suites stand on — deterministic seeded triggers, the
``REPRO_FAULTS`` spec grammar, metrics export, and the zero-cost
disabled path.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

import repro.faults as faults
from repro.faults import FaultPlan, FaultRule, InjectedFault
from repro.obs import metrics as _obs


class TestFaultRule:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(point="x", action="explode")

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(point="x", probability=1.5)

    def test_once_implies_times_one(self):
        assert FaultRule(point="x", once=True).times == 1

    def test_bare_rule_fires_unconditionally(self):
        # No trigger options at all → every evaluation fires.
        assert FaultRule(point="x").every == 1


class TestPlanTriggers:
    def test_every_nth_evaluation_fires(self):
        plan = FaultPlan({"p": {"every": 3}})
        fired = [plan.decide("p") is not None for _ in range(9)]
        assert fired == [False, False, True] * 3

    def test_once_fires_exactly_once(self):
        plan = FaultPlan({"p": {"once": True}})
        fired = [plan.decide("p") is not None for _ in range(5)]
        assert fired == [True, False, False, False, False]

    def test_after_skips_warmup_evaluations(self):
        plan = FaultPlan({"p": {"after": 2}})
        fired = [plan.decide("p") is not None for _ in range(4)]
        assert fired == [False, False, True, True]

    def test_times_caps_total_fires(self):
        plan = FaultPlan({"p": {"times": 2}})
        assert sum(plan.decide("p") is not None for _ in range(10)) == 2

    def test_unknown_point_never_fires(self):
        plan = FaultPlan({"p": {"once": True}})
        assert plan.decide("other") is None
        assert "other" not in plan.counts()

    def test_probability_is_deterministic_per_seed(self):
        decisions = []
        for _ in range(2):
            plan = FaultPlan({"p": {"probability": 0.5}}, seed=7)
            decisions.append(
                [plan.decide("p") is not None for _ in range(64)]
            )
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_different_seeds_diverge(self):
        a = FaultPlan({"p": {"probability": 0.5}}, seed=1)
        b = FaultPlan({"p": {"probability": 0.5}}, seed=2)
        assert [a.decide("p") is not None for _ in range(64)] != [
            b.decide("p") is not None for _ in range(64)
        ]

    def test_points_get_independent_streams(self):
        # Same seed, different point names → different rng streams.
        plan = FaultPlan(
            {"x": {"probability": 0.5}, "y": {"probability": 0.5}}, seed=3
        )
        xs = [plan.decide("x") is not None for _ in range(64)]
        ys = [plan.decide("y") is not None for _ in range(64)]
        assert xs != ys

    def test_counts_track_evaluations_and_fires(self):
        plan = FaultPlan({"p": {"every": 2}})
        for _ in range(5):
            plan.decide("p")
        assert plan.counts() == {"p": {"evaluations": 5, "fired": 2}}


class TestSpecParsing:
    def test_full_grammar_round_trip(self):
        plan = FaultPlan.parse(
            "seed=7;wal.append.fsync:p=0.2;"
            "recourse.chunk:once,action=exit,exit_code=3;"
            "monitor.refresh:every=4,after=1,action=sleep,sleep=0.01"
        )
        assert plan.seed == 7
        assert set(plan.points()) == {
            "wal.append.fsync", "recourse.chunk", "monitor.refresh",
        }
        chunk = plan._rules["recourse.chunk"]
        assert chunk.once and chunk.action == "exit" and chunk.exit_code == 3
        refresh = plan._rules["monitor.refresh"]
        assert refresh.every == 4 and refresh.after == 1
        assert refresh.action == "sleep" and refresh.sleep_s == 0.01
        assert plan._rules["wal.append.fsync"].probability == 0.2

    def test_empty_clauses_ignored(self):
        plan = FaultPlan.parse(" ; seed=3 ; p:once ; ")
        assert plan.seed == 3 and plan.points() == ("p",)

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown fault option"):
            FaultPlan.parse("p:frequency=2")

    def test_bare_unknown_flag_rejected(self):
        with pytest.raises(ValueError, match="unknown fault option"):
            FaultPlan.parse("p:always")

    def test_missing_point_rejected(self):
        with pytest.raises(ValueError, match="without a point"):
            FaultPlan.parse(":once")

    def test_env_var_installs_plan_at_import(self):
        # The import-time path runs in a fresh interpreter: REPRO_FAULTS
        # must yield an installed plan without any test hook.
        env = dict(os.environ)
        env["REPRO_FAULTS"] = "seed=9;wal.append.fsync:p=0.5"
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [
                sys.executable,
                "-c",
                "import repro.faults as f; p = f.active_plan(); "
                "print(p.seed, ','.join(p.points()))",
            ],
            capture_output=True,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.returncode == 0, out.stderr
        assert out.stdout.split() == ["9", "wal.append.fsync"]


class TestHooks:
    def test_disabled_hooks_are_no_ops(self):
        assert faults.active_plan() is None
        faults.inject("anything")  # must not raise
        assert faults.fires("anything") is False

    def test_inject_raises_injected_fault_by_default(self):
        with faults.plan({"p": {"once": True}}):
            with pytest.raises(InjectedFault, match="injected fault at 'p'"):
                faults.inject("p")

    def test_inject_uses_exception_factory(self):
        with faults.plan({"p": {"once": True}}):
            with pytest.raises(OSError, match="disk full"):
                faults.inject("p", lambda: OSError("disk full"))

    def test_fires_is_decision_only(self):
        with faults.plan({"p": {"action": "raise"}}) as plan:
            assert faults.fires("p") is True  # action ignored, no raise
            assert plan.counts()["p"]["fired"] == 1

    def test_sleep_action_returns(self):
        with faults.plan({"p": {"action": "sleep", "sleep_s": 0.0}}):
            faults.inject("p")  # returns instead of raising

    def test_context_manager_restores_previous_plan(self):
        outer = FaultPlan({"a": {"once": True}})
        previous = faults.install(outer)
        try:
            with faults.plan({"b": {"once": True}}) as inner:
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        finally:
            faults.install(previous)

    def test_context_manager_accepts_spec_string(self):
        with faults.plan("seed=4;p:every=2") as plan:
            assert plan.seed == 4 and plan.points() == ("p",)

    def test_fired_faults_export_metrics(self):
        was_enabled = _obs.set_enabled(True)
        try:
            with faults.plan({"metrics.probe.point": {"every": 1}}):
                faults.fires("metrics.probe.point")
            counters = _obs.get_registry().snapshot()["counters"]
            matching = [
                key
                for key in counters
                if "repro_faults_injected_total" in key
                and "metrics.probe.point" in key
            ]
            assert matching and counters[matching[0]] >= 1
        finally:
            _obs.set_enabled(was_enabled)
