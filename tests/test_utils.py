"""Unit tests for utils: rng, validation, exceptions."""

import numpy as np
import pytest

from repro.utils.exceptions import (
    DomainError,
    EstimationError,
    GraphError,
    NotFittedError,
    RecourseInfeasibleError,
    ReproError,
)
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.validation import (
    check_fitted,
    check_in_domain,
    check_probability,
    check_same_length,
)


class TestRng:
    def test_as_generator_from_int_is_deterministic(self):
        a = as_generator(5).random(3)
        b = as_generator(5).random(3)
        assert np.array_equal(a, b)

    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_none(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_spawn_generators_independent_streams(self):
        gens = spawn_generators(0, 3)
        draws = [g.random() for g in gens]
        assert len(set(draws)) == 3

    def test_spawn_generators_deterministic(self):
        a = [g.random() for g in spawn_generators(9, 2)]
        b = [g.random() for g in spawn_generators(9, 2)]
        assert a == b

    def test_spawn_zero(self):
        assert spawn_generators(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestValidation:
    def test_check_probability_accepts_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_check_probability_rejects_outside(self):
        with pytest.raises(ValueError):
            check_probability(1.5)
        with pytest.raises(ValueError):
            check_probability(-0.1, name="alpha")

    def test_check_in_domain(self):
        assert check_in_domain("a", ["a", "b"]) == "a"
        with pytest.raises(DomainError):
            check_in_domain("c", ["a", "b"])

    def test_check_same_length(self):
        assert check_same_length([1, 2], "ab") == 2
        assert check_same_length() == 0
        with pytest.raises(ValueError):
            check_same_length([1], [1, 2])

    def test_check_fitted(self):
        class Thing:
            model_ = None

        with pytest.raises(NotFittedError):
            check_fitted(Thing(), "model_")
        thing = Thing()
        thing.model_ = object()
        check_fitted(thing, "model_")  # should not raise


class TestExceptions:
    @pytest.mark.parametrize(
        "exc",
        [DomainError, GraphError, EstimationError, RecourseInfeasibleError, NotFittedError],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_domain_error_is_value_error(self):
        assert issubclass(DomainError, ValueError)

    def test_estimation_error_is_runtime_error(self):
        assert issubclass(EstimationError, RuntimeError)
