"""Unit tests for the counterfactual-fairness auditor."""

import numpy as np
import pytest

from repro import Lewis
from repro.core.fairness import FairnessAuditor
from repro.data import load_dataset
from repro.data.compas import compas_software_positive
from repro.data.table import Column, Table


@pytest.fixture(scope="module")
def compas_lewis():
    bundle = load_dataset("compas", n_rows=3_000, seed=0)
    features = bundle.table.select(bundle.feature_names)
    return Lewis(
        compas_software_positive,
        data=features,
        feature_names=bundle.feature_names,
        graph=bundle.graph,
    )


@pytest.fixture(scope="module")
def fair_lewis():
    """An algorithm that provably ignores the protected attribute."""
    rng = np.random.default_rng(0)
    n = 20_000
    protected = rng.integers(0, 2, n)
    merit = rng.integers(0, 3, n)
    table = Table(
        [
            Column.from_codes("protected", protected, ("A", "B"), ordered=False),
            Column.from_codes("merit", merit, (0, 1, 2)),
        ]
    )
    from repro.causal.graph import CausalDiagram

    graph = CausalDiagram([], nodes=["protected", "merit"])
    return Lewis(
        lambda t: t.codes("merit") >= 2,
        data=table,
        feature_names=["protected", "merit"],
        graph=graph,
    )


class TestFairnessVerdict:
    def test_biased_software_flagged(self, compas_lewis):
        auditor = FairnessAuditor(compas_lewis)
        verdict = auditor.audit("race")
        assert not verdict.is_counterfactually_fair
        assert verdict.sufficiency > 0.1
        assert verdict.worst_pair is not None

    def test_fair_algorithm_passes(self, fair_lewis):
        auditor = FairnessAuditor(fair_lewis)
        verdict = auditor.audit("protected")
        assert verdict.is_counterfactually_fair
        assert verdict.necessity <= auditor.tolerance
        assert verdict.sufficiency <= auditor.tolerance

    def test_summary_mentions_status(self, compas_lewis, fair_lewis):
        unfair = FairnessAuditor(compas_lewis).audit("race").summary()
        fair = FairnessAuditor(fair_lewis).audit("protected").summary()
        assert "NOT" in unfair
        assert "NOT" not in fair

    def test_audit_all(self, compas_lewis):
        verdicts = FairnessAuditor(compas_lewis).audit_all(["race", "sex"])
        assert [v.attribute for v in verdicts] == ["race", "sex"]

    def test_invalid_tolerance(self, compas_lewis):
        with pytest.raises(ValueError):
            FairnessAuditor(compas_lewis, tolerance=1.5)


class TestDisparities:
    def test_demographic_disparity_non_negative(self, compas_lewis):
        auditor = FairnessAuditor(compas_lewis)
        assert auditor.demographic_disparity("race") >= 0.0

    def test_demographic_disparity_detects_gap(self, compas_lewis):
        # The software is biased: positive rates differ across races.
        auditor = FairnessAuditor(compas_lewis)
        assert auditor.demographic_disparity("race") > 0.1

    def test_fair_algorithm_small_disparity(self, fair_lewis):
        auditor = FairnessAuditor(fair_lewis)
        assert auditor.demographic_disparity("protected") < 0.05

    def test_contextual_disparity_directions(self, compas_lewis):
        auditor = FairnessAuditor(compas_lewis)
        gap = auditor.contextual_disparity(
            "priors_count", {"race": "Black"}, {"race": "White"}
        )
        # Figure 4c: necessity higher for Black defendants.
        assert gap.necessity_gap >= 0.0
        assert gap.attribute == "priors_count"
